"""Invariants checked after every chaos run.

Each check returns zero or more :class:`Violation` records; an empty list
means the runtime survived the campaign.  The checks mirror the guarantees
of Section IV: recovery restores exactly the lost work (no lost or
duplicated shuffle data, no unbounded re-execution), every job reaches a
terminal state, and useless-recovery failures are reported, not retried.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.runtime import JobResult, SwiftRuntime
from ..sim.failures import FailureKind
from .campaign import Campaign


@dataclass(frozen=True)
class Violation:
    """One failed invariant with enough context to debug it."""

    invariant: str
    message: str
    job_id: str = ""

    def __str__(self) -> str:
        suffix = f" job={self.job_id}" if self.job_id else ""
        return f"[{self.invariant}]{suffix} {self.message}"

    def to_dict(self) -> dict[str, str]:
        return {
            "invariant": self.invariant,
            "message": self.message,
            "job_id": self.job_id,
        }


#: Failure reasons the runtime is *allowed* to report for a failed job.
_APP_ERROR_PREFIX = "application_error"
_RETRY_PREFIX = "retry budget exhausted"

#: Event kinds that can legitimately burn retry budget.
_DESTRUCTIVE = {
    FailureKind.TASK_CRASH.value,
    FailureKind.PROCESS_RESTART.value,
    FailureKind.MACHINE_CRASH.value,
    FailureKind.CACHE_WORKER_LOSS.value,
}


def check_terminal_states(
    runtime: SwiftRuntime, expected_jobs: list[str]
) -> list[Violation]:
    """Every submitted job must reach a terminal state before the watchdog
    deadline: a missing result means livelock or stuck scheduling."""
    seen = {r.job_id for r in runtime.results}
    out = []
    for job_id in expected_jobs:
        if job_id not in seen:
            pending = runtime.sim.pending_events()
            state = "livelocked" if pending else "deadlocked (queue drained)"
            out.append(
                Violation(
                    "terminal-state",
                    f"job never reached a terminal state; simulator {state} "
                    f"at t={runtime.sim.now:.1f} with {pending} pending events",
                    job_id,
                )
            )
    return out


def check_result_equivalence(
    results: list[JobResult], baseline: list[JobResult]
) -> list[Violation]:
    """Completed jobs must produce exactly the baseline's outputs.

    In the simulator a job's "result" is its task coverage: every stage must
    finalize each task index exactly once (whatever the attempt count), and
    no (stage, index, attempt) may be double-counted — lost shuffle data
    shows up as a missing index, double-counted data as a duplicate attempt.
    """
    base_by_job = {r.job_id: r for r in baseline}
    out: list[Violation] = []
    for result in results:
        if not result.completed:
            continue
        base = base_by_job.get(result.job_id)
        if base is None:
            out.append(
                Violation(
                    "result-equivalence",
                    "job completed but has no failure-free baseline",
                    result.job_id,
                )
            )
            continue
        covered: dict[str, set[int]] = {}
        attempts: set[tuple[str, int, int]] = set()
        for timing in result.metrics.tasks:
            covered.setdefault(timing.stage, set()).add(timing.index)
            key = (timing.stage, timing.index, timing.attempt)
            if key in attempts:
                out.append(
                    Violation(
                        "result-equivalence",
                        f"double-counted output: stage {timing.stage} task "
                        f"{timing.index} attempt {timing.attempt} finalized twice",
                        result.job_id,
                    )
                )
            attempts.add(key)
        expected: dict[str, set[int]] = {}
        for timing in base.metrics.tasks:
            expected.setdefault(timing.stage, set()).add(timing.index)
        for stage, indices in expected.items():
            missing = indices - covered.get(stage, set())
            if missing:
                out.append(
                    Violation(
                        "result-equivalence",
                        f"lost output: stage {stage} is missing task indices "
                        f"{sorted(missing)[:5]}{'...' if len(missing) > 5 else ''}",
                        result.job_id,
                    )
                )
        for stage in covered.keys() - expected.keys():
            out.append(
                Violation(
                    "result-equivalence",
                    f"unexpected stage {stage} in output",
                    result.job_id,
                )
            )
    return out


def check_cache_accounting(runtime: SwiftRuntime) -> list[Violation]:
    """After all jobs are terminal, no Cache Worker may still hold shuffle
    data: leftovers are leaked (never released) shuffle bytes."""
    out = []
    for machine in runtime.cluster.machines:
        worker = machine.cache_worker
        if worker is None:
            continue
        if len(worker) > 0 or worker.bytes_in_memory > 1e-6:
            out.append(
                Violation(
                    "cache-accounting",
                    f"cache worker on machine {machine.machine_id} leaked "
                    f"{len(worker)} entries / {worker.bytes_in_memory:.0f} "
                    "bytes after all jobs terminated",
                )
            )
    return out


def check_resource_conservation(runtime: SwiftRuntime) -> list[Violation]:
    """Resource accounting must balance: every register has its release.

    When the run was wired with a :class:`repro.audit.ResourceLedger`
    (non-strict, so the campaign completes and *all* divergences are
    collected), each recorded :class:`~repro.audit.AuditViolation` becomes a
    chaos violation.  A final drained-state reconcile catches leaks the
    per-checkpoint reconciles could not see (e.g. a registration with no
    release at all).
    """
    ledger = runtime.ledger
    if ledger is None:
        return []
    ledger.reconcile(runtime.cluster, "chaos:post-campaign", expect_drained=True)
    return [
        Violation(
            "resource-conservation",
            str(audit_violation),
        )
        for audit_violation in ledger.violations
    ]


def check_bounded_recovery(runtime: SwiftRuntime) -> list[Violation]:
    """Recovery work must stay within what the RecoveryDecisions planned:
    actual re-runs never exceed the planned re-run budget, and no task may
    exceed the retry budget."""
    out = []
    max_retries = runtime.config.retry.max_task_retries
    for job_run in runtime.job_runs.values():
        metrics = job_run.metrics
        if metrics.task_reruns > metrics.planned_rerun_tasks:
            out.append(
                Violation(
                    "bounded-recovery",
                    f"{metrics.task_reruns} task re-runs exceed the "
                    f"{metrics.planned_rerun_tasks} planned by RecoveryDecisions",
                    metrics.job_id,
                )
            )
        worst = max((t.attempt for t in metrics.tasks), default=0)
        if worst > max_retries:
            out.append(
                Violation(
                    "bounded-recovery",
                    f"a task reached attempt {worst} > "
                    f"max_task_retries={max_retries}",
                    metrics.job_id,
                )
            )
    return out


def check_bounded_shuffle_recovery(
    campaign: Campaign, runtime: SwiftRuntime
) -> list[Violation]:
    """Shuffle-loss recovery must be exactly as expensive as it has to be.

    The runtime keeps a structured log of every Cache Worker loss decision
    (``SwiftRuntime.shuffle_recovery_log``).  Three bounds hold: a producer
    rerun is only legitimate when the lost share had *zero* surviving
    replicas; a failover requires at least one survivor; and no shuffle
    recovery may be logged at all unless the campaign injected a
    CACHE_WORKER_LOSS event.
    """
    out = []
    log = runtime.shuffle_recovery_log
    if log and not campaign.has_kind(FailureKind.CACHE_WORKER_LOSS):
        out.append(
            Violation(
                "bounded-shuffle-recovery",
                f"{len(log)} shuffle recovery actions logged but the "
                "campaign injected no cache_worker_loss",
            )
        )
    for record in log:
        if record["action"] == "rerun" and record["survivors"] > 0:
            out.append(
                Violation(
                    "bounded-shuffle-recovery",
                    f"producer rerun for edge {record['edge_key']} despite "
                    f"{record['survivors']} surviving replica holder(s) — "
                    "failover should have served the share",
                    record["job_id"],
                )
            )
        elif record["action"] == "failover" and record["survivors"] <= 0:
            out.append(
                Violation(
                    "bounded-shuffle-recovery",
                    f"failover recorded for edge {record['edge_key']} with "
                    "no surviving replica holder",
                    record["job_id"],
                )
            )
    return out


def check_failure_reasons(
    campaign: Campaign, results: list[JobResult]
) -> list[Violation]:
    """Failed jobs must fail *for cause*.

    An application error fails the job by design (reported, not retried) —
    but only if the campaign actually injected one.  A retry-budget
    escalation needs at least one destructive event.  Anything else is an
    unexplained failure.
    """
    out = []
    has_app_error = campaign.has_kind(FailureKind.APPLICATION_ERROR)
    has_destructive = any(e.kind in _DESTRUCTIVE for e in campaign.events)
    for result in results:
        if not result.failed:
            continue
        reason = result.reason
        if reason.startswith(_APP_ERROR_PREFIX):
            if not has_app_error:
                out.append(
                    Violation(
                        "useless-not-retried",
                        "job reported an application error but the campaign "
                        "injected none",
                        result.job_id,
                    )
                )
            # Reported-not-retried: after an application error the runtime
            # must not have re-run anything for this job beyond what other
            # events caused; an app error alone implies zero re-runs.
            if not has_destructive and result.metrics.task_reruns > 0:
                out.append(
                    Violation(
                        "useless-not-retried",
                        f"application error was retried "
                        f"({result.metrics.task_reruns} task re-runs)",
                        result.job_id,
                    )
                )
        elif reason.startswith(_RETRY_PREFIX):
            if not has_destructive:
                out.append(
                    Violation(
                        "unexpected-job-failure",
                        "retry budget exhausted without any destructive event",
                        result.job_id,
                    )
                )
        else:
            out.append(
                Violation(
                    "unexpected-job-failure",
                    f"job failed without a recognized reason: {reason!r}",
                    result.job_id,
                )
            )
    return out


def check_all(
    campaign: Campaign,
    runtime: SwiftRuntime,
    results: list[JobResult],
    baseline: list[JobResult],
    expected_jobs: list[str],
) -> list[Violation]:
    """Run the full invariant library; empty list = survived."""
    violations = []
    violations.extend(check_terminal_states(runtime, expected_jobs))
    violations.extend(check_result_equivalence(results, baseline))
    violations.extend(check_cache_accounting(runtime))
    violations.extend(check_resource_conservation(runtime))
    violations.extend(check_bounded_recovery(runtime))
    violations.extend(check_bounded_shuffle_recovery(campaign, runtime))
    violations.extend(check_failure_reasons(campaign, results))
    return violations
