"""repro.audit — resource-accounting audit layer.

A :class:`ResourceLedger` shadows every register/release of network
connections, Cache Worker bytes, and executor slots, and reconciles the
shadow against the authoritative state at checkpoints.  Wire one through
:class:`repro.api.RuntimeConfig` (``audit=True``) or pass it to
:class:`~repro.core.runtime.SwiftRuntime` directly::

    from repro.api import RuntimeConfig, Simulation
    from repro.workloads import terasort

    outcome = Simulation(RuntimeConfig(n_machines=8, audit=True)).run(
        terasort.terasort_job(24, 24)
    )

In strict mode (the default for tests and chaos) the first violation
raises :class:`AuditError`; in production mode violations are recorded on
the ledger and emitted as ``repro.obs`` instant records + counters.
"""

from .ledger import AuditError, AuditViolation, ResourceLedger

__all__ = ["AuditError", "AuditViolation", "ResourceLedger"]
