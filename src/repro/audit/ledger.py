"""Resource-accounting ledger: shadow counters + reconciliation.

The simulator's headline crossovers (Section III-B / V-E) are driven by two
hand-maintained resource counters: the cluster-wide open TCP connection
count (congestion, retransmission rate) and per-machine Cache Worker memory
(LRU spill).  :class:`ResourceLedger` shadows every register/release of
those resources — plus executor-slot occupancy — independently of the
authoritative state, and :meth:`ResourceLedger.reconcile` compares the two
at checkpoints (stage completion, job teardown, end of run).

A divergence means some code path mutated a counter without its counterpart
(double release, leaked registration, float drift) — exactly the class of
bug that silently skews every benchmark.  In **strict** mode (tests, chaos)
the first violation raises :class:`AuditError`; in **production** mode each
violation is recorded, emitted as a ``repro.obs`` instant record under
``Category.AUDIT``, and counted on the ``audit_violations`` counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from ..obs.records import Category
from ..obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing-only imports avoid cycles
    from ..core.cache_worker import CacheWorker
    from ..sim.cluster import Cluster
    from ..sim.network import NetworkModel

#: Tolerance for float comparisons of byte counts.  Shadow and authoritative
#: sides apply the same arithmetic, so any honest divergence is exact; the
#: epsilon only absorbs representation noise of very large byte values.
_BYTES_EPS = 1e-3


@dataclass(frozen=True)
class AuditViolation:
    """One accounting divergence with enough context to debug it."""

    resource: str
    message: str
    checkpoint: str = ""
    #: Shadow (ledger) and authoritative values at the divergence.
    expected: float = 0.0
    actual: float = 0.0

    def __str__(self) -> str:
        at = f" @{self.checkpoint}" if self.checkpoint else ""
        return (
            f"[audit:{self.resource}]{at} {self.message} "
            f"(ledger={self.expected:g}, actual={self.actual:g})"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "resource": self.resource,
            "message": self.message,
            "checkpoint": self.checkpoint,
            "expected": self.expected,
            "actual": self.actual,
        }


class AuditError(AssertionError):
    """Raised in strict mode on the first accounting violation.

    Subclasses ``AssertionError`` so strict-mode audit failures read as what
    they are — broken internal invariants — and fail tests loudly.
    """

    def __init__(self, violation: AuditViolation) -> None:
        super().__init__(str(violation))
        self.violation = violation


@dataclass
class _CacheShadow:
    """Shadow bookkeeping for one machine's Cache Worker."""

    bytes_in_memory: float = 0.0
    bytes_on_disk: float = 0.0
    #: Live entry count (register on first write, release on drop).
    entries: int = 0


class ResourceLedger:
    """Shadow ledger for connections, Cache Worker bytes, executor slots.

    The ledger is observational: recording never mutates simulation state,
    and a runtime wired without one behaves identically.  All hooks are
    cheap (integer/float adds) so audit mode stays usable for benchmarks.
    """

    def __init__(
        self,
        strict: bool = True,
        tracer: Optional[Tracer] = None,
        now_fn: Optional[Any] = None,
    ) -> None:
        self.strict = strict
        self.tracer = tracer
        #: Zero-argument callable returning the current simulated time for
        #: obs emission; defaults to 0.0 when the runtime has not wired one.
        self._now_fn = now_fn if now_fn is not None else (lambda: 0.0)
        self.violations: list[AuditViolation] = []
        # -- network connections ------------------------------------------
        self.connections_outstanding = 0
        self.connections_registered_total = 0
        self.connections_released_total = 0
        # -- cache workers ------------------------------------------------
        self._cache: dict[int, _CacheShadow] = {}
        # -- shuffle replication ------------------------------------------
        #: Bytes currently held as redundant replica copies across the
        #: cluster, plus lifetime totals.  Replicas must conserve: every
        #: replica byte written is eventually released, dropped with its
        #: worker, or lost with the job.
        self.replica_bytes_outstanding = 0.0
        self.replica_bytes_written_total = 0.0
        self.replica_bytes_released_total = 0.0
        self.replica_bytes_dropped_total = 0.0
        # -- reconciliation bookkeeping -----------------------------------
        self.checkpoints_run = 0

    def bind_clock(self, now_fn: Any) -> None:
        """Attach the simulated clock used to timestamp obs emissions."""
        self._now_fn = now_fn

    # ------------------------------------------------------------------
    # Violation plumbing
    # ------------------------------------------------------------------
    def _violate(
        self,
        resource: str,
        message: str,
        checkpoint: str = "",
        expected: float = 0.0,
        actual: float = 0.0,
    ) -> None:
        violation = AuditViolation(
            resource=resource,
            message=message,
            checkpoint=checkpoint,
            expected=expected,
            actual=actual,
        )
        self.violations.append(violation)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant(
                Category.AUDIT,
                f"audit.{resource}",
                self._now_fn(),
                scope=checkpoint,
                message=message,
                expected=expected,
                actual=actual,
            )
            self.tracer.count("audit_violations")
        if self.strict:
            raise AuditError(violation)

    @property
    def ok(self) -> bool:
        """True while no violation has been recorded."""
        return not self.violations

    # ------------------------------------------------------------------
    # Network connection shadow accounting
    # ------------------------------------------------------------------
    def conn_registered(self, count: int) -> None:
        """Shadow one ``NetworkModel.register_connections`` call."""
        self.connections_outstanding += count
        self.connections_registered_total += count

    def conn_released(self, count: int, open_before: int) -> None:
        """Shadow one release; flag any release exceeding registrations.

        ``open_before`` is the authoritative open-connection count before
        the release, so the report names both views of the imbalance.
        """
        self.connections_released_total += count
        if count > self.connections_outstanding:
            self._violate(
                "connections",
                f"release of {count} connections exceeds the "
                f"{self.connections_outstanding} outstanding registrations "
                f"(authoritative count before release: {open_before})",
                expected=self.connections_outstanding,
                actual=count,
            )
            # Keep the shadow clamped like production so one bug does not
            # cascade into a violation per subsequent checkpoint.
            self.connections_outstanding = 0
        else:
            self.connections_outstanding -= count

    # ------------------------------------------------------------------
    # Cache Worker shadow accounting
    # ------------------------------------------------------------------
    def _shadow(self, machine_id: int) -> _CacheShadow:
        shadow = self._cache.get(machine_id)
        if shadow is None:
            shadow = _CacheShadow()
            self._cache[machine_id] = shadow
        return shadow

    def cache_written(
        self, machine_id: int, mem_bytes: float, disk_bytes: float, new_entry: bool
    ) -> None:
        """Shadow one Cache Worker write (memory and/or disk bytes)."""
        shadow = self._shadow(machine_id)
        shadow.bytes_in_memory += mem_bytes
        shadow.bytes_on_disk += disk_bytes
        if new_entry:
            shadow.entries += 1

    def cache_spilled(self, machine_id: int, n_bytes: float) -> None:
        """Shadow an LRU spill: bytes move from memory to disk."""
        shadow = self._shadow(machine_id)
        shadow.bytes_in_memory -= n_bytes
        shadow.bytes_on_disk += n_bytes

    def cache_released(
        self, machine_id: int, mem_bytes: float, disk_bytes: float
    ) -> None:
        """Shadow one entry release (consume-to-zero, job teardown)."""
        shadow = self._shadow(machine_id)
        shadow.bytes_in_memory -= mem_bytes
        shadow.bytes_on_disk -= disk_bytes
        shadow.entries -= 1
        if shadow.entries < 0:
            self._violate(
                "cache_entries",
                f"machine {machine_id} released more cache entries than "
                "were ever written",
                expected=0,
                actual=shadow.entries,
            )
            shadow.entries = 0

    def cache_dropped_all(
        self, machine_id: int, replica_bytes: float = 0.0
    ) -> None:
        """Shadow a Cache Worker process death: all state is lost at once.

        ``replica_bytes`` is the portion of the lost bytes that were
        redundant replica copies; they leave the outstanding replica pool
        with the dead worker.
        """
        self._cache[machine_id] = _CacheShadow()
        if replica_bytes:
            self.replica_bytes_outstanding -= replica_bytes
            self.replica_bytes_dropped_total += replica_bytes
            self._check_replica_floor(machine_id)

    # ------------------------------------------------------------------
    # Shuffle-replication shadow accounting
    # ------------------------------------------------------------------
    def cache_replica_written(self, machine_id: int, n_bytes: float) -> None:
        """Shadow one redundant replica write (beyond the primary copy)."""
        self.replica_bytes_outstanding += n_bytes
        self.replica_bytes_written_total += n_bytes

    def cache_replica_released(self, machine_id: int, n_bytes: float) -> None:
        """Shadow one replica entry release (consume or job teardown)."""
        self.replica_bytes_outstanding -= n_bytes
        self.replica_bytes_released_total += n_bytes
        self._check_replica_floor(machine_id)

    def _check_replica_floor(self, machine_id: int) -> None:
        if self.replica_bytes_outstanding < -_BYTES_EPS:
            self._violate(
                "replica_bytes",
                f"machine {machine_id} released/dropped more replica bytes "
                "than were ever written",
                expected=0.0,
                actual=self.replica_bytes_outstanding,
            )
            self.replica_bytes_outstanding = 0.0

    # ------------------------------------------------------------------
    # Reconciliation
    # ------------------------------------------------------------------
    def reconcile_network(self, network: "NetworkModel", checkpoint: str) -> None:
        """Shadow vs authoritative open-connection count."""
        if network.open_connections != self.connections_outstanding:
            self._violate(
                "connections",
                "open-connection count diverged from the ledger "
                f"({self.connections_registered_total} registered, "
                f"{self.connections_released_total} released)",
                checkpoint=checkpoint,
                expected=self.connections_outstanding,
                actual=network.open_connections,
            )
            # Resync so later checkpoints report fresh divergences only.
            self.connections_outstanding = network.open_connections

    def reconcile_cache_worker(
        self, worker: "CacheWorker", checkpoint: str
    ) -> None:
        """Three-way check of one Cache Worker's memory accounting.

        The running counter, the entry map, and the shadow ledger must all
        agree; the entry map is the ground truth (it is what spill and
        release decisions walk).
        """
        machine_id = worker.machine_id
        entry_sum = sum(e.bytes_in_memory for e in worker.iter_entries())
        if abs(worker.bytes_in_memory - entry_sum) > _BYTES_EPS:
            self._violate(
                "cache_memory",
                f"machine {machine_id} bytes_in_memory counter drifted from "
                "the entry map",
                checkpoint=checkpoint,
                expected=entry_sum,
                actual=worker.bytes_in_memory,
            )
        if worker.bytes_in_memory < 0:
            self._violate(
                "cache_memory",
                f"machine {machine_id} bytes_in_memory is negative",
                checkpoint=checkpoint,
                expected=0.0,
                actual=worker.bytes_in_memory,
            )
        shadow = self._cache.get(machine_id)
        if shadow is not None:
            if abs(shadow.bytes_in_memory - entry_sum) > _BYTES_EPS:
                self._violate(
                    "cache_memory",
                    f"machine {machine_id} ledger memory shadow diverged "
                    "from the entry map",
                    checkpoint=checkpoint,
                    expected=shadow.bytes_in_memory,
                    actual=entry_sum,
                )
                shadow.bytes_in_memory = entry_sum
            if shadow.entries != len(worker):
                self._violate(
                    "cache_entries",
                    f"machine {machine_id} ledger entry count diverged "
                    "from the worker",
                    checkpoint=checkpoint,
                    expected=shadow.entries,
                    actual=len(worker),
                )
                shadow.entries = len(worker)

    def reconcile_executors(self, cluster: "Cluster", checkpoint: str) -> None:
        """O(1) free-slot counter vs a recount over the executor pool.

        The fast path mutates idle counters inline (bypassing the executor
        state machine), so this catches any unrolled transition that forgot
        its counter half.
        """
        from ..sim.cluster import ExecutorState

        recount = sum(
            1
            for machine in cluster.machines
            if machine.accepts_tasks
            for executor in machine.executors
            if executor.state is ExecutorState.IDLE
        )
        if recount != cluster.free_executor_count():
            self._violate(
                "executor_slots",
                "cluster free-slot counter diverged from the executor pool",
                checkpoint=checkpoint,
                expected=recount,
                actual=cluster.free_executor_count(),
            )
        for machine in cluster.machines:
            idle = sum(
                1
                for executor in machine.executors
                if executor.state is ExecutorState.IDLE
            )
            if idle != machine.idle_count:
                self._violate(
                    "executor_slots",
                    f"machine {machine.machine_id} idle counter diverged "
                    "from its executors",
                    checkpoint=checkpoint,
                    expected=idle,
                    actual=machine.idle_count,
                )

    def reconcile(
        self,
        cluster: "Cluster",
        checkpoint: str,
        expect_drained: bool = False,
    ) -> list[AuditViolation]:
        """Full reconciliation against one cluster's authoritative state.

        ``expect_drained`` additionally asserts the end-of-run/teardown
        state: zero open connections and no resident Cache Worker bytes
        (leaked registrations or shuffle data that outlived every job).
        Returns the violations found by *this* checkpoint.
        """
        before = len(self.violations)
        self.checkpoints_run += 1
        self.reconcile_network(cluster.network, checkpoint)
        for machine in cluster.machines:
            worker = machine.cache_worker
            if worker is not None:
                self.reconcile_cache_worker(worker, checkpoint)  # type: ignore[arg-type]
        self.reconcile_executors(cluster, checkpoint)
        if expect_drained:
            if cluster.network.open_connections != 0:
                self._violate(
                    "connections",
                    "connections still open after all jobs terminated",
                    checkpoint=checkpoint,
                    expected=0,
                    actual=cluster.network.open_connections,
                )
            if self.replica_bytes_outstanding > _BYTES_EPS:
                self._violate(
                    "replica_bytes",
                    "replica bytes still outstanding after all jobs "
                    f"terminated ({self.replica_bytes_written_total:g} "
                    "written over the run)",
                    checkpoint=checkpoint,
                    expected=0.0,
                    actual=self.replica_bytes_outstanding,
                )
            for machine in cluster.machines:
                worker = machine.cache_worker
                if worker is None:
                    continue
                if len(worker) > 0 or worker.bytes_in_memory > _BYTES_EPS:  # type: ignore[arg-type]
                    self._violate(
                        "cache_memory",
                        f"machine {machine.machine_id} still holds "
                        f"{len(worker)} cache entries after all jobs "  # type: ignore[arg-type]
                        "terminated",
                        checkpoint=checkpoint,
                        expected=0.0,
                        actual=worker.bytes_in_memory,  # type: ignore[union-attr]
                    )
        return self.violations[before:]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """JSON-friendly snapshot of the ledger state."""
        return {
            "strict": self.strict,
            "checkpoints_run": self.checkpoints_run,
            "connections_outstanding": self.connections_outstanding,
            "connections_registered_total": self.connections_registered_total,
            "connections_released_total": self.connections_released_total,
            "replica_bytes_outstanding": self.replica_bytes_outstanding,
            "replica_bytes_written_total": self.replica_bytes_written_total,
            "replica_bytes_released_total": self.replica_bytes_released_total,
            "replica_bytes_dropped_total": self.replica_bytes_dropped_total,
            "violations": [v.to_dict() for v in self.violations],
        }
