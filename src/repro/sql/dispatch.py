"""Engine dispatch: route each query to the columnar or row executor.

The dispatcher compiles the logical plan for the columnar engine first;
if every operator is supported the query runs vectorized, otherwise it
falls back to the row executor (``engine="auto"``, the default).  Callers
can force either engine with ``engine="row"`` / ``engine="columnar"`` —
forcing columnar on an unsupported plan raises
:class:`~repro.sql.columnar.UnsupportedFeature`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional

from .catalog import DEFAULT_CATALOG, Catalog
from .columnar import (
    ColumnarExecutor,
    UnsupportedFeature,
)
from .executor import Database, QueryExecutor, Row
from .logical import LogicalNode, plan_statement
from .parser import parse

#: Accepted values for the ``engine`` parameter.
ENGINES = ("auto", "row", "columnar")


@dataclass
class QueryOutcome:
    """One executed query: its rows plus how and where it ran."""

    rows: list[Row] = field(default_factory=list)
    #: Engine that actually ran the query: ``"row"`` or ``"columnar"``.
    engine: str = "row"
    #: Engine the caller asked for (``"auto"`` when dispatched).
    requested: str = "auto"
    #: Why the dispatcher picked ``engine``.
    reason: str = ""
    elapsed_s: float = 0.0


def choose_engine(
    plan: LogicalNode,
    database: Database,
    catalog: Optional[Catalog] = None,
    batch_size: Optional[int] = None,
) -> tuple[str, str]:
    """``(engine, reason)`` the dispatcher would pick for ``plan``."""
    try:
        ColumnarExecutor(database, catalog, batch_size).compile(plan)
    except UnsupportedFeature as exc:
        return "row", f"columnar fallback: {exc}"
    return "columnar", "all operators supported"


def engine_for(
    sql: str, database: Database, catalog: Optional[Catalog] = None
) -> tuple[str, str]:
    """``(engine, reason)`` auto-dispatch would pick for ``sql``."""
    active = catalog or DEFAULT_CATALOG
    plan = plan_statement(parse(sql), active)
    return choose_engine(plan, database, active)


def execute_plan(
    plan: LogicalNode,
    database: Database,
    catalog: Optional[Catalog] = None,
    engine: str = "auto",
    batch_size: Optional[int] = None,
    tracer=None,
    metrics=None,
) -> QueryOutcome:
    """Run a logical plan on the selected (or auto-picked) engine."""
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    active_catalog = catalog or DEFAULT_CATALOG
    chosen, reason, compiled = engine, "", None
    if engine in ("auto", "columnar"):
        executor = ColumnarExecutor(
            database, active_catalog, batch_size, tracer=tracer, metrics=metrics
        )
        try:
            compiled = executor.compile(plan)
            chosen, reason = "columnar", "all operators supported"
        except UnsupportedFeature as exc:
            if engine == "columnar":
                raise
            chosen, reason = "row", f"columnar fallback: {exc}"
    else:
        chosen, reason = "row", "row engine requested"
    started = perf_counter()
    if compiled is not None:
        rows = executor.run(compiled)
    else:
        rows = QueryExecutor(database, active_catalog).execute(plan)
    elapsed = perf_counter() - started
    if metrics is not None:
        metrics.counter("sql_queries").inc()
        metrics.counter(f"sql_engine_{chosen}").inc()
        metrics.histogram("sql_query_s").observe(elapsed)
    if tracer is not None and tracer.enabled:
        tracer.instant(
            "sql", "dispatch", 0.0,
            engine=chosen, requested=engine, reason=reason,
            rows=len(rows), elapsed_s=round(elapsed, 6),
        )
        if chosen == "row":
            tracer.span("sql", "row.execute", 0.0, elapsed, rows=len(rows))
    return QueryOutcome(
        rows=rows, engine=chosen, requested=engine,
        reason=reason, elapsed_s=elapsed,
    )


def execute_sql(
    sql: str,
    database: Database,
    catalog: Optional[Catalog] = None,
    engine: str = "auto",
    batch_size: Optional[int] = None,
    tracer=None,
    metrics=None,
) -> QueryOutcome:
    """Parse, plan, and run ``sql``; returns the full outcome."""
    active = catalog or DEFAULT_CATALOG
    plan = plan_statement(parse(sql), active)
    return execute_plan(
        plan, database, active, engine=engine, batch_size=batch_size,
        tracer=tracer, metrics=metrics,
    )


def run_query(
    sql: str,
    database: Database,
    catalog: Optional[Catalog] = None,
    engine: str = "auto",
    batch_size: Optional[int] = None,
    tracer=None,
    metrics=None,
) -> list[Row]:
    """Parse, plan, and execute ``sql`` over ``database``.

    Drop-in replacement for the row-only
    :func:`repro.sql.executor.run_query`, with engine dispatch.
    """
    return execute_sql(
        sql, database, catalog, engine=engine, batch_size=batch_size,
        tracer=tracer, metrics=metrics,
    ).rows
