"""Vectorized expression kernels: AST -> array-op closure trees.

:func:`compile_kernel` lowers one scalar expression into a tree of
closures, each mapping a :class:`~repro.sql.batch.ColumnBatch` to either a
:class:`~repro.sql.batch.ColumnVector` or a :class:`Const` (a scalar the
whole batch shares).  Evaluation is array-at-a-time:

* comparisons and arithmetic run as numpy ufuncs with three-valued NULL
  logic carried in the null bitmaps (a NULL operand nulls the lane);
* ``and``/``or``/``not`` lower NULL to Python truthiness (``bool(None)`` is
  falsy) exactly like the row engine, and always produce plain booleans;
* LIKE and the string scalar functions evaluate once per *dictionary
  entry* and gather the per-unique result through the codes;
* anything outside the typed fast paths — mixed-type (``object``) columns,
  string arithmetic, non-constant patterns — falls back to an elementwise
  loop over decoded values running the row engine's own scalar semantics,
  so the differential contract holds on every input.

Divergences from strict row-at-a-time evaluation are confined to error
paths: the row engine short-circuits ``and``/``or``/CASE per row and so
may skip a lane that raises (division by zero, ``year`` on a non-date),
while the vectorized form evaluates every lane (numpy warnings are
suppressed; the masked lanes never reach the result).
"""

from __future__ import annotations

import fnmatch
import re
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from .ast import (
    AGGREGATE_FUNCTIONS,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    Literal,
    Star,
    UnaryOp,
)
from .batch import ColumnBatch, ColumnVector
from .executor import _SCALAR_FUNCTIONS, ExecutionError, like_to_glob, sql_like


class Const:
    """A per-batch constant: one scalar standing for every lane."""

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value


Value = Union[ColumnVector, Const]
Evaluator = Callable[[ColumnBatch], Value]

_NUMERIC_KINDS = frozenset(("int", "float", "bool"))
_EMPTY_BOOL = np.empty(0, np.bool_)

#: Row-engine scalar semantics, used by constant folding and fallbacks.
_PY_BIN: dict[str, Callable[[object, object], object]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}

_NP_CMP = {
    "=": np.equal, "<>": np.not_equal, "<": np.less,
    ">": np.greater, "<=": np.less_equal, ">=": np.greater_equal,
}

_NP_ARITH = {
    "+": np.add, "-": np.subtract, "*": np.multiply,
    "/": np.true_divide, "%": np.mod,
}

#: Integer constants beyond int64 range take the elementwise path.
_INT64_LIMIT = 2 ** 62


# ----------------------------------------------------------------------
# Value helpers
# ----------------------------------------------------------------------

def _kind_of(v: Value) -> str:
    if isinstance(v, ColumnVector):
        return v.kind
    value = v.value
    if value is None:
        return "null"
    t = type(value)
    if t is bool:
        return "bool"
    if t is int:
        return "int"
    if t is float:
        return "float"
    if t is str:
        return "str"
    return "object"


def _pylist(v: Value, n: int) -> list:
    if isinstance(v, ColumnVector):
        return v.to_pylist()
    return [v.value] * n


def _numeric_operand(v: Value) -> object:
    """Array or scalar for a numeric operand; bools promote to ints."""
    if isinstance(v, Const):
        value = v.value
        return int(value) if type(value) is bool else value
    if v.kind == "bool":
        return v.data.astype(np.int64)
    return v.data


def _mask_union(a: Value, b: Value) -> Optional[np.ndarray]:
    ma = a.mask if isinstance(a, ColumnVector) else None
    mb = b.mask if isinstance(b, ColumnVector) else None
    if ma is None:
        return mb
    if mb is None:
        return ma
    return ma | mb


def materialize(v: Value, n: int) -> ColumnVector:
    """Broadcast a Const to a full vector (no-op for vectors)."""
    if isinstance(v, ColumnVector):
        return v
    return ColumnVector.constant(v.value, n)


def truthy(v: Value, n: int) -> np.ndarray:
    """Python truthiness of each lane; NULL is falsy, like ``bool(None)``."""
    if isinstance(v, Const):
        return np.full(n, bool(v.value), np.bool_)
    kind = v.kind
    if kind == "bool":
        out = v.data
    elif kind in ("int", "float"):
        out = v.data != 0
    elif kind == "str":
        nonempty = np.fromiter(
            (len(u) > 0 for u in v.dictionary.tolist()),
            np.bool_, count=len(v.dictionary),
        )
        out = nonempty[v.data]
    else:
        # object lanes hold raw values (None included): exact bool().
        return np.fromiter((bool(x) for x in v.data), np.bool_, count=len(v.data))
    if v.mask is not None:
        out = out & ~v.mask
    return out


def _elementwise1(fn: Callable[[object], object], v: Value, n: int) -> Value:
    return ColumnVector.from_values([fn(x) for x in _pylist(v, n)])


def _elementwise2(
    fn: Callable[[object, object], object], a: Value, b: Value, n: int
) -> Value:
    va, vb = _pylist(a, n), _pylist(b, n)
    return ColumnVector.from_values([fn(x, y) for x, y in zip(va, vb)])


def _null_prop(fn: Callable[[object, object], object]) -> Callable:
    return lambda x, y: None if x is None or y is None else fn(x, y)


# ----------------------------------------------------------------------
# Comparison / arithmetic
# ----------------------------------------------------------------------

def _compare(op: str, a: Value, b: Value, n: int) -> Value:
    ka, kb = _kind_of(a), _kind_of(b)
    if ka == "null" or kb == "null":
        return Const(None)
    if isinstance(a, Const) and isinstance(b, Const):
        return Const(_PY_BIN[op](a.value, b.value))
    if ka in _NUMERIC_KINDS and kb in _NUMERIC_KINDS:
        with np.errstate(all="ignore"):
            out = _NP_CMP[op](_numeric_operand(a), _numeric_operand(b))
        return ColumnVector("bool", out, _mask_union(a, b))
    if ka == "str" and kb == "str":
        return _compare_str(op, a, b)
    # Mixed types: the row engine's Python operators decide (== is False,
    # orderings raise TypeError) — run them lane by lane.
    return _elementwise2(_null_prop(_PY_BIN[op]), a, b, n)


def _compare_str(op: str, a: Value, b: Value) -> Value:
    if isinstance(a, ColumnVector) and isinstance(b, ColumnVector):
        if a.dictionary is b.dictionary:
            ca, cb = a.data, b.data
        else:
            merged = np.unique(np.concatenate([a.dictionary, b.dictionary]))
            ca = merged.searchsorted(a.dictionary).astype(np.int32)[a.data]
            cb = merged.searchsorted(b.dictionary).astype(np.int32)[b.data]
        # The merged dictionary is sorted, so code order == value order and
        # every comparison can run on the codes.
        return ColumnVector("bool", _NP_CMP[op](ca, cb), _mask_union(a, b))
    if isinstance(b, Const):
        col, per_unique = a, _NP_CMP[op](a.dictionary, b.value)
    else:
        col, per_unique = b, _NP_CMP[op](a.value, b.dictionary)
    return ColumnVector("bool", per_unique[col.data], col.mask)


def _arith(op: str, a: Value, b: Value, n: int) -> Value:
    ka, kb = _kind_of(a), _kind_of(b)
    if ka == "null" or kb == "null":
        return Const(None)
    if isinstance(a, Const) and isinstance(b, Const):
        return Const(_PY_BIN[op](a.value, b.value))
    if ka in _NUMERIC_KINDS and kb in _NUMERIC_KINDS and not (
        _oversized_const(a) or _oversized_const(b)
    ):
        with np.errstate(all="ignore"):
            out = _NP_ARITH[op](_numeric_operand(a), _numeric_operand(b))
        kind = "int" if op != "/" and "float" not in (ka, kb) else "float"
        return ColumnVector(kind, out, _mask_union(a, b))
    return _elementwise2(_null_prop(_PY_BIN[op]), a, b, n)


def _oversized_const(v: Value) -> bool:
    return (
        isinstance(v, Const)
        and type(v.value) is int
        and abs(v.value) > _INT64_LIMIT
    )


def _negate(v: Value, n: int) -> Value:
    kind = _kind_of(v)
    if kind == "null":
        return Const(None)
    if isinstance(v, Const):
        return Const(-v.value)  # type: ignore[operator]
    if kind in ("int", "bool"):
        data = v.data.astype(np.int64) if kind == "bool" else v.data
        return ColumnVector("int", -data, v.mask)
    if kind == "float":
        return ColumnVector("float", -v.data, v.mask)
    return _elementwise1(lambda x: None if x is None else -x, v, n)  # type: ignore[operator]


# ----------------------------------------------------------------------
# Conditional selection (CASE / coalesce)
# ----------------------------------------------------------------------

def _where(cond: np.ndarray, a: Value, b: Value, n: int) -> Value:
    """Per-lane select: ``a`` where ``cond`` else ``b``, preserving types."""
    if not cond.any():
        return b
    if cond.all():
        return a
    ka, kb = _kind_of(a), _kind_of(b)
    if ka == "null" and kb == "null":
        return Const(None)
    if ka == "null":
        return _where_null(cond, materialize(b, n))
    if kb == "null":
        return _where_null(~cond, materialize(a, n))
    if ka == kb and ka in _NUMERIC_KINDS:
        va, vb = materialize(a, n), materialize(b, n)
        data = np.where(cond, va.data, vb.data)
        return ColumnVector(ka, data, _where_masks(cond, va, vb))
    if ka == kb == "str":
        va, vb = materialize(a, n), materialize(b, n)
        if va.dictionary is vb.dictionary:
            dictionary, ca, cb = va.dictionary, va.data, vb.data
        else:
            dictionary = np.unique(np.concatenate([va.dictionary, vb.dictionary]))
            ca = dictionary.searchsorted(va.dictionary).astype(np.int32)[va.data]
            cb = dictionary.searchsorted(vb.dictionary).astype(np.int32)[vb.data]
        data = np.where(cond, ca, cb).astype(np.int32)
        return ColumnVector("str", data, _where_masks(cond, va, vb), dictionary)
    # Mixed kinds (e.g. a CASE yielding int on one branch, float on the
    # other): keep exact per-lane Python types via the object path.
    la, lb = _pylist(a, n), _pylist(b, n)
    return ColumnVector.from_values(
        [x if c else y for c, x, y in zip(cond.tolist(), la, lb)]
    )


def _where_null(cond: np.ndarray, v: ColumnVector) -> ColumnVector:
    """``v`` with the lanes selected by ``cond`` turned into NULLs."""
    mask = cond | v.mask if v.mask is not None else cond
    if v.kind == "object":
        data = v.data.copy()
        data[cond] = None
        return ColumnVector("object", data, mask)
    return ColumnVector(v.kind, v.data, mask, v.dictionary)


def _where_masks(
    cond: np.ndarray, a: ColumnVector, b: ColumnVector
) -> Optional[np.ndarray]:
    if a.mask is None and b.mask is None:
        return None
    return np.where(cond, a.null_mask(), b.null_mask())


def _not_null_lanes(v: Value, n: int) -> np.ndarray:
    if isinstance(v, Const):
        return np.full(n, v.value is not None, np.bool_)
    return ~v.null_mask()


# ----------------------------------------------------------------------
# LIKE / IN / scalar functions
# ----------------------------------------------------------------------

def _like_const(v: Value, rx: "re.Pattern[str]", n: int) -> Value:
    # No NULL handling on purpose: the row engine formats NULL as the
    # literal string "None" before matching (sql_like(str(None), pattern)).
    if isinstance(v, Const):
        return Const(rx.match(str(v.value)) is not None)
    if v.kind == "str":
        per_unique = np.fromiter(
            (rx.match(u) is not None for u in v.dictionary.tolist()),
            np.bool_, count=len(v.dictionary),
        )
        out = per_unique[v.data]
        if v.has_nulls():
            out = np.where(v.mask, rx.match("None") is not None, out)
        return ColumnVector("bool", out, None)
    values = v.to_pylist()
    return ColumnVector("bool", np.fromiter(
        (rx.match(str(x)) is not None for x in values), np.bool_, count=n
    ), None)


def _in_list(needle: Value, values: List[Value], negated: bool, n: int) -> Value:
    if not values:
        return Const(bool(negated))
    if isinstance(needle, Const) or _kind_of(needle) == "object" or not all(
        isinstance(v, Const) for v in values
    ):
        # Lane-by-lane, matching the row engine's `needle == value` chain
        # exactly (None == None is a match under Python equality).
        lists = [_pylist(v, n) for v in values]
        nl = _pylist(needle, n)
        out = []
        for i, x in enumerate(nl):
            matched = any(x == lst[i] for lst in lists)
            out.append((not matched) if negated else matched)
        if isinstance(needle, Const):
            return Const(out[0]) if n else ColumnVector.from_values(out)
        return ColumnVector("bool", np.fromiter(out, np.bool_, count=n), None)
    consts = [v.value for v in values]  # type: ignore[union-attr]
    mask = needle.null_mask()
    valid = ~mask
    out = mask.copy() if any(c is None for c in consts) else np.zeros(n, np.bool_)
    kind = needle.kind
    if kind == "str":
        str_consts = [c for c in consts if type(c) is str]
        if str_consts:
            member = np.isin(needle.dictionary, np.array(str_consts, np.str_))
            out = out | (member[needle.data] & valid)
    else:
        data = _numeric_operand(needle)
        for c in consts:
            if isinstance(c, (int, float)):
                scalar = int(c) if type(c) is bool else c
                out = out | ((data == scalar) & valid)
    if negated:
        out = ~out
    return ColumnVector("bool", out, None)


def _apply_scalar_fn(
    fn: Callable[..., object], name: str, vals: List[Value], n: int
) -> Value:
    if all(isinstance(v, Const) for v in vals):
        return Const(fn(*[v.value for v in vals]))  # type: ignore[union-attr]
    first, rest = vals[0], vals[1:]
    if isinstance(first, ColumnVector) and all(isinstance(r, Const) for r in rest):
        cargs = [r.value for r in rest]  # type: ignore[union-attr]
        if first.kind == "str":
            # Evaluate once per dictionary entry, gather through the codes.
            uniques = first.dictionary.tolist()
            codes = first.data
            if first.has_nulls():
                # The row engine passes raw None into the function (and may
                # raise, e.g. year(NULL)); evaluate it once, only if needed.
                uniques = uniques + [None]
                codes = np.where(first.mask, len(uniques) - 1, codes)
            applied = [fn(u, *cargs) for u in uniques]
            return ColumnVector.from_values(applied).take(codes)
        if first.kind in ("int", "float") and name == "abs" and not cargs:
            if first.has_nulls():
                fn(None)  # raises TypeError exactly like the row engine
            return ColumnVector(first.kind, np.abs(first.data), first.mask)
        if first.kind in ("int", "float", "bool") and name == "round":
            if first.has_nulls():
                fn(None, *cargs)  # raises TypeError exactly like the row engine
            # builtins.round ties-to-even can differ from np.round at the
            # digit boundary; loop to stay bit-identical with the row engine.
            return ColumnVector.from_values(
                [fn(v, *cargs) for v in first.data.tolist()]
            )
    lists = [_pylist(v, n) for v in vals]
    return ColumnVector.from_values([fn(*vs) for vs in zip(*lists)])


def _coalesce(vals: List[Value], n: int) -> Value:
    if not vals:
        return Const(None)
    acc = vals[-1]
    for v in reversed(vals[:-1]):
        acc = _where(_not_null_lanes(v, n), v, acc, n)
    return acc


# ----------------------------------------------------------------------
# Compiler
# ----------------------------------------------------------------------

class Kernel:
    """A compiled expression over a fixed schema.

    :meth:`eval` returns the vectorized result (a :class:`ColumnVector`);
    :meth:`truth` its Python-truthiness bitmap; calling the kernel decodes
    to a plain value list (the historical interface).  Zero-length batches
    short-circuit without evaluating — the row engine never evaluates
    expressions for absent rows either.
    """

    __slots__ = ("_run", "col_keys")

    def __init__(self, run: Evaluator, col_keys: list[str]) -> None:
        self._run = run
        self.col_keys = col_keys

    def eval(self, batch: ColumnBatch) -> ColumnVector:
        if batch.length == 0:
            return ColumnVector.empty("object")
        return materialize(self._run(batch), batch.length)

    def truth(self, batch: ColumnBatch) -> np.ndarray:
        if batch.length == 0:
            return _EMPTY_BOOL
        return truthy(self._run(batch), batch.length)

    def __call__(self, batch: ColumnBatch) -> list:
        if batch.length == 0:
            return []
        value = self._run(batch)
        if isinstance(value, Const):
            return [value.value] * batch.length
        return value.to_pylist()


class _Compiler:
    """Lowers one expression tree to an evaluator closure tree."""

    def __init__(self, schema: Sequence[str]) -> None:
        self.schema = set(schema)
        self.col_keys: dict[str, None] = {}

    def compile(self, expr: Expr) -> Evaluator:
        if isinstance(expr, Literal):
            value = expr.value
            const = Const(value)
            return lambda batch: const
        if isinstance(expr, ColumnRef):
            key = f"{expr.qualifier}.{expr.name}" if expr.qualifier else expr.name
            if key not in self.schema:
                if expr.name in self.schema:
                    key = expr.name
                else:
                    raise ExecutionError(f"column {key!r} not found in row")
            self.col_keys[key] = None
            return lambda batch: batch.columns[key]
        if isinstance(expr, Star):
            raise ExecutionError("* is only valid in select lists and count(*)")
        if isinstance(expr, UnaryOp):
            operand = self.compile(expr.operand)
            if expr.op == "-":
                return lambda batch: _negate(operand(batch), batch.length)
            if expr.op == "not":
                return self._compile_not(operand)
            raise ExecutionError(f"unknown unary operator {expr.op}")
        if isinstance(expr, BinaryOp):
            return self._compile_binary(expr)
        if isinstance(expr, FunctionCall):
            return self._compile_call(expr)
        if isinstance(expr, CaseExpr):
            return self._compile_case(expr)
        if isinstance(expr, InList):
            needle = self.compile(expr.expr)
            values = [self.compile(v) for v in expr.values]
            negated = bool(expr.negated)

            def run_in(batch: ColumnBatch) -> Value:
                return _in_list(
                    needle(batch), [v(batch) for v in values], negated, batch.length
                )
            return run_in
        raise ExecutionError(f"cannot evaluate {expr!r}")

    @staticmethod
    def _compile_not(operand: Evaluator) -> Evaluator:
        def run(batch: ColumnBatch) -> Value:
            v = operand(batch)
            if isinstance(v, Const):
                return Const(not v.value)
            return ColumnVector("bool", ~truthy(v, batch.length), None)
        return run

    def _compile_binary(self, expr: BinaryOp) -> Evaluator:
        op = expr.op
        if op in ("and", "or"):
            left, right = self.compile(expr.left), self.compile(expr.right)
            is_and = op == "and"

            def run_logic(batch: ColumnBatch) -> Value:
                lv = left(batch)
                if isinstance(lv, Const):
                    # Constant short-circuit, like the row engine's and/or.
                    if bool(lv.value) != is_and:
                        return Const(not is_and)
                    rv = right(batch)
                    if isinstance(rv, Const):
                        return Const(bool(rv.value))
                    return ColumnVector("bool", truthy(rv, batch.length), None)
                lt = truthy(lv, batch.length)
                rt = truthy(right(batch), batch.length)
                data = (lt & rt) if is_and else (lt | rt)
                return ColumnVector("bool", data, None)
            return run_logic
        if op == "like":
            left = self.compile(expr.left)
            if isinstance(expr.right, Literal):
                glob = like_to_glob(str(expr.right.value))
                rx = re.compile(fnmatch.translate(glob))
                return lambda batch: _like_const(left(batch), rx, batch.length)
            right = self.compile(expr.right)
            return lambda batch: _elementwise2(
                sql_like, left(batch), right(batch), batch.length
            )
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        if op == "||":
            return lambda batch: _elementwise2(
                lambda x, y: f"{x}{y}", left(batch), right(batch), batch.length
            )
        if op in _NP_CMP:
            return lambda batch: _compare(
                op, left(batch), right(batch), batch.length
            )
        if op in _NP_ARITH:
            return lambda batch: _arith(
                op, left(batch), right(batch), batch.length
            )
        raise ExecutionError(f"unknown operator {op!r}")

    def _compile_call(self, expr: FunctionCall) -> Evaluator:
        name = expr.name.lower()
        if name in AGGREGATE_FUNCTIONS:
            raise ExecutionError(
                f"aggregate {name}() outside an aggregation context"
            )
        fn = _SCALAR_FUNCTIONS.get(name)
        if fn is None:
            raise ExecutionError(f"unknown function {expr.name!r}")
        args = [self.compile(a) for a in expr.args]
        if name == "coalesce":
            return lambda batch: _coalesce(
                [a(batch) for a in args], batch.length
            )
        if name == "is_null" and len(args) == 1:
            arg = args[0]

            def run_is_null(batch: ColumnBatch) -> Value:
                v = arg(batch)
                if isinstance(v, Const):
                    return Const(v.value is None)
                return ColumnVector("bool", v.null_mask(), None)
            return run_is_null

        def run_fn(batch: ColumnBatch) -> Value:
            return _apply_scalar_fn(
                fn, name, [a(batch) for a in args], batch.length
            )
        return run_fn

    def _compile_case(self, expr: CaseExpr) -> Evaluator:
        whens = [
            (self.compile(cond), self.compile(value))
            for cond, value in expr.whens
        ]
        default = self.compile(expr.default) if expr.default is not None else None

        def run(batch: ColumnBatch) -> Value:
            n = batch.length
            acc: Value = default(batch) if default is not None else Const(None)
            for cond_ev, val_ev in reversed(whens):
                cond = truthy(cond_ev(batch), n)
                if not cond.any():
                    continue
                acc = _where(cond, val_ev(batch), acc, n)
            return acc
        return run


def compile_kernel(expr: Expr, schema: Sequence[str]) -> Kernel:
    """Compile ``expr`` into a vectorized kernel over ``schema`` columns."""
    compiler = _Compiler(schema)
    run = compiler.compile(expr)
    return Kernel(run, list(compiler.col_keys))
