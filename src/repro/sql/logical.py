"""Logical plan: relational operators built from the AST.

The planner lowers a :class:`~repro.sql.ast.SelectStatement` into a tree of
logical nodes.  Column resolution is late-bound: the row executor evaluates
column references against rows that carry both bare and qualified keys, so
the logical plan only needs the *structure* right.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .ast import (
    Expr,
    OrderItem,
    SelectItem,
    SelectStatement,
    SubqueryRef,
    TableRef,
)
from .catalog import Catalog, DEFAULT_CATALOG


class PlanError(ValueError):
    """Raised when a statement cannot be planned."""


@dataclass
class LogicalScan:
    """Read a base table under a binding name."""
    table: str
    binding: str


@dataclass
class LogicalFilter:
    """Keep rows satisfying a predicate."""
    child: "LogicalNode"
    predicate: Expr


@dataclass
class LogicalJoin:
    """Join two inputs on a condition (inner or left)."""
    left: "LogicalNode"
    right: "LogicalNode"
    condition: Expr
    kind: str = "inner"


@dataclass
class LogicalAggregate:
    """Group rows and evaluate aggregate select items."""
    child: "LogicalNode"
    group_by: list[Expr]
    items: list[SelectItem]
    having: Optional[Expr] = None


@dataclass
class LogicalProject:
    """Evaluate select items (optionally DISTINCT)."""
    child: "LogicalNode"
    items: list[SelectItem]
    distinct: bool = False


@dataclass
class LogicalSort:
    """Order rows by one or more keys."""
    child: "LogicalNode"
    order_by: list[OrderItem]


@dataclass
class LogicalLimit:
    """Keep the first N rows."""
    child: "LogicalNode"
    count: int


@dataclass
class LogicalSubquery:
    """A FROM-clause subquery with an optional binding alias."""

    child: "LogicalNode"
    binding: Optional[str]


LogicalNode = Union[
    LogicalScan,
    LogicalFilter,
    LogicalJoin,
    LogicalAggregate,
    LogicalProject,
    LogicalSort,
    LogicalLimit,
    LogicalSubquery,
]


def plan_statement(
    statement: SelectStatement, catalog: Catalog = DEFAULT_CATALOG
) -> LogicalNode:
    """Lower a parsed statement to a logical plan tree."""
    if statement.from_table is None:
        raise PlanError("SELECT without FROM is not supported")
    node = _plan_source(statement.from_table, catalog)
    for join in statement.joins:
        right = _plan_source(join.table, catalog)
        node = LogicalJoin(left=node, right=right, condition=join.condition,
                           kind=join.kind)
    if statement.where is not None:
        node = LogicalFilter(child=node, predicate=statement.where)
    if statement.is_aggregate:
        node = LogicalAggregate(
            child=node,
            group_by=list(statement.group_by),
            items=list(statement.select_items),
            having=statement.having,
        )
    else:
        node = LogicalProject(
            child=node, items=list(statement.select_items),
            distinct=statement.distinct,
        )
    if statement.order_by:
        node = LogicalSort(child=node, order_by=list(statement.order_by))
    if statement.limit is not None:
        node = LogicalLimit(child=node, count=statement.limit)
    return node


def _plan_source(
    source: Union[TableRef, SubqueryRef], catalog: Catalog
) -> LogicalNode:
    if isinstance(source, TableRef):
        schema = catalog.resolve_table(source.name)
        return LogicalScan(table=schema.name, binding=source.binding)
    inner = plan_statement(source.query, catalog)
    return LogicalSubquery(child=inner, binding=source.alias)


def plan_children(node: LogicalNode) -> list[LogicalNode]:
    """The children of a logical node (for generic traversals)."""
    if isinstance(node, LogicalScan):
        return []
    if isinstance(node, LogicalJoin):
        return [node.left, node.right]
    return [node.child]


def scans_in(node: LogicalNode) -> list[LogicalScan]:
    """All base-table scans under ``node``."""
    if isinstance(node, LogicalScan):
        return [node]
    found: list[LogicalScan] = []
    for child in plan_children(node):
        found.extend(scans_in(child))
    return found


def explain(node: LogicalNode, indent: int = 0) -> str:
    """Human-readable plan tree."""
    pad = "  " * indent
    if isinstance(node, LogicalScan):
        line = f"{pad}Scan({node.table} as {node.binding})"
    elif isinstance(node, LogicalFilter):
        line = f"{pad}Filter({node.predicate})"
    elif isinstance(node, LogicalJoin):
        line = f"{pad}Join[{node.kind}]({node.condition})"
    elif isinstance(node, LogicalAggregate):
        keys = ", ".join(str(g) for g in node.group_by)
        line = f"{pad}Aggregate(group by {keys})"
    elif isinstance(node, LogicalProject):
        names = ", ".join(i.output_name for i in node.items)
        line = f"{pad}Project({names})"
    elif isinstance(node, LogicalSort):
        keys = ", ".join(
            f"{o.expr}{' desc' if o.descending else ''}" for o in node.order_by
        )
        line = f"{pad}Sort({keys})"
    elif isinstance(node, LogicalLimit):
        line = f"{pad}Limit({node.count})"
    elif isinstance(node, LogicalSubquery):
        line = f"{pad}Subquery(as {node.binding})"
    else:  # pragma: no cover - exhaustive above
        raise PlanError(f"unknown node {node!r}")
    return "\n".join([line] + [explain(c, indent + 1) for c in plan_children(node)])
