"""Tokenizer for the Swift SQL-like job-description language (Fig. 1)."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Token categories produced by the lexer."""
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    KEYWORD = "keyword"
    OPERATOR = "operator"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    DOT = "."
    STAR = "*"
    SEMICOLON = ";"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "select", "from", "where", "group", "order", "by", "having",
        "join", "inner", "left", "right", "outer", "on", "as", "and",
        "or", "not", "like", "in", "between", "limit", "asc", "desc",
        "distinct", "case", "when", "then", "else", "end", "is", "null",
        "exists", "union", "all",
    }
)

_OPERATORS = ("<>", "!=", ">=", "<=", "=", "<", ">", "+", "-", "/", "%", "||")


class LexError(ValueError):
    """Raised on unexpected input characters."""


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""
    kind: TokenKind
    text: str
    position: int

    @property
    def lowered(self) -> str:
        """The token text lower-cased (keywords compare case-insensitively)."""
        return self.text.lower()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.value}, {self.text!r})"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; always ends with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if source.startswith("--", i):
            end = source.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "'":
            end = i + 1
            while end < n and source[end] != "'":
                end += 1
            if end >= n:
                raise LexError(f"unterminated string literal at {i}")
            tokens.append(Token(TokenKind.STRING, source[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            end = i
            seen_dot = False
            while end < n and (source[end].isdigit() or (source[end] == "." and not seen_dot)):
                if source[end] == ".":
                    # A dot is part of the number only when followed by a digit.
                    if end + 1 >= n or not source[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            tokens.append(Token(TokenKind.NUMBER, source[i:end], i))
            i = end
            continue
        if ch.isalpha() or ch == "_":
            end = i
            while end < n and (source[end].isalnum() or source[end] == "_"):
                end += 1
            text = source[i:end]
            kind = TokenKind.KEYWORD if text.lower() in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, i))
            i = end
            continue
        if ch == "(":
            tokens.append(Token(TokenKind.LPAREN, ch, i)); i += 1; continue
        if ch == ")":
            tokens.append(Token(TokenKind.RPAREN, ch, i)); i += 1; continue
        if ch == ",":
            tokens.append(Token(TokenKind.COMMA, ch, i)); i += 1; continue
        if ch == ".":
            tokens.append(Token(TokenKind.DOT, ch, i)); i += 1; continue
        if ch == "*":
            tokens.append(Token(TokenKind.STAR, ch, i)); i += 1; continue
        if ch == ";":
            tokens.append(Token(TokenKind.SEMICOLON, ch, i)); i += 1; continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(TokenKind.OPERATOR, op, i))
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens
