"""Abstract syntax tree for the Swift SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Literal:
    """A constant value (number, string, or NULL)."""
    value: object

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef:
    """``name`` or ``qualifier.name``."""

    name: str
    qualifier: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Star:
    """``*`` or ``qualifier.*`` in a select list or count(*)."""

    qualifier: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.qualifier}.*" if self.qualifier else "*"


@dataclass(frozen=True)
class BinaryOp:
    """A binary operation: arithmetic, comparison, AND/OR, LIKE, ||."""
    op: str
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp:
    """A unary operation: negation or NOT."""
    op: str
    operand: "Expr"

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class FunctionCall:
    """A scalar or aggregate function call."""
    name: str
    args: tuple["Expr", ...]
    distinct: bool = False

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        prefix = "distinct " if self.distinct else ""
        return f"{self.name}({prefix}{inner})"


@dataclass(frozen=True)
class CaseExpr:
    """``CASE WHEN cond THEN value ... ELSE value END``."""

    whens: tuple[tuple["Expr", "Expr"], ...]
    default: Optional["Expr"] = None

    def __str__(self) -> str:
        arms = " ".join(f"when {c} then {v}" for c, v in self.whens)
        tail = f" else {self.default}" if self.default is not None else ""
        return f"case {arms}{tail} end"


@dataclass(frozen=True)
class InList:
    """``expr IN (v1, v2, ...)`` / ``expr NOT IN (...)``."""

    expr: "Expr"
    values: tuple["Expr", ...]
    negated: bool = False

    def __str__(self) -> str:
        inner = ", ".join(str(v) for v in self.values)
        op = "not in" if self.negated else "in"
        return f"({self.expr} {op} ({inner}))"


Expr = Union[Literal, ColumnRef, Star, BinaryOp, UnaryOp, FunctionCall, CaseExpr, InList]

#: Aggregate function names recognised by the planner and executor.
AGGREGATE_FUNCTIONS = frozenset({"sum", "count", "avg", "min", "max"})


def contains_aggregate(expr: Expr) -> bool:
    """True when ``expr`` contains an aggregate function call."""
    if isinstance(expr, FunctionCall):
        if expr.name.lower() in AGGREGATE_FUNCTIONS:
            return True
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, CaseExpr):
        parts = [e for pair in expr.whens for e in pair]
        if expr.default is not None:
            parts.append(expr.default)
        return any(contains_aggregate(p) for p in parts)
    if isinstance(expr, InList):
        return contains_aggregate(expr.expr) or any(
            contains_aggregate(v) for v in expr.values
        )
    return False


def column_refs(expr: Expr) -> list[ColumnRef]:
    """All column references inside ``expr`` (depth-first)."""
    if isinstance(expr, ColumnRef):
        return [expr]
    if isinstance(expr, BinaryOp):
        return column_refs(expr.left) + column_refs(expr.right)
    if isinstance(expr, UnaryOp):
        return column_refs(expr.operand)
    if isinstance(expr, FunctionCall):
        refs: list[ColumnRef] = []
        for arg in expr.args:
            refs.extend(column_refs(arg))
        return refs
    if isinstance(expr, CaseExpr):
        refs = []
        for cond, value in expr.whens:
            refs.extend(column_refs(cond))
            refs.extend(column_refs(value))
        if expr.default is not None:
            refs.extend(column_refs(expr.default))
        return refs
    if isinstance(expr, InList):
        refs = list(column_refs(expr.expr))
        for value in expr.values:
            refs.extend(column_refs(value))
        return refs
    return []


# ----------------------------------------------------------------------
# Query structure
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SelectItem:
    """One select-list entry with its optional alias."""
    expr: Expr
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        """The column name this item produces in the result."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        return str(self.expr)


@dataclass(frozen=True)
class TableRef:
    """A base table in FROM, optionally aliased."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name rows of this table are qualified with."""
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef:
    """A parenthesised subquery in FROM, optionally aliased."""

    query: "SelectStatement"
    alias: Optional[str] = None


@dataclass(frozen=True)
class JoinClause:
    """One JOIN ... ON clause."""
    kind: str  # "inner" | "left" | "right"
    table: Union[TableRef, SubqueryRef]
    condition: Expr


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key with its direction."""
    expr: Expr
    descending: bool = False


@dataclass
class SelectStatement:
    """A parsed SELECT statement."""
    select_items: list[SelectItem] = field(default_factory=list)
    distinct: bool = False
    from_table: Optional[Union[TableRef, SubqueryRef]] = None
    joins: list[JoinClause] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None

    @property
    def is_aggregate(self) -> bool:
        """True when the statement groups or aggregates."""
        return bool(self.group_by) or any(
            contains_aggregate(item.expr) for item in self.select_items
        )
