"""The Swift SQL-like front end (Fig. 1).

Pipeline: SQL text -> :func:`parse` -> :func:`plan_statement` (logical plan)
-> :class:`PhysicalPlanner` / :func:`compile_sql` (Swift job DAG).  A
row-level :class:`QueryExecutor` over :func:`generate_database` data lets
examples check query *answers*, not just schedules.
"""

from .ast import (
    BinaryOp,
    ColumnRef,
    Expr,
    FunctionCall,
    JoinClause,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
)
from .catalog import Catalog, CatalogError, Column, DEFAULT_CATALOG, TableSchema, TPCH_TABLES
from .batch import ColumnTable, ColumnVector
from .columnar import (
    DEFAULT_BATCH_SIZE,
    ColumnarExecutor,
    ColumnBatch,
    UnsupportedFeature,
    compile_kernel,
)
from .datagen import generate_database
from .dispatch import (
    ENGINES,
    QueryOutcome,
    engine_for,
    execute_plan,
    execute_sql,
    run_query,
)
from .executor import (
    ExecutionError,
    QueryExecutor,
    eval_expr,
    like_to_glob,
    plan_schema,
    sql_like,
)
from .lexer import LexError, Token, TokenKind, tokenize
from .logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalSubquery,
    PlanError,
    explain,
    plan_statement,
    scans_in,
)
from .parser import ParseError, parse
from .physical import PhysicalPlanner, compile_sql

__all__ = [
    "BinaryOp",
    "Catalog",
    "CatalogError",
    "Column",
    "ColumnBatch",
    "ColumnRef",
    "ColumnTable",
    "ColumnVector",
    "ColumnarExecutor",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_CATALOG",
    "ENGINES",
    "ExecutionError",
    "Expr",
    "FunctionCall",
    "JoinClause",
    "LexError",
    "Literal",
    "LogicalAggregate",
    "LogicalFilter",
    "LogicalJoin",
    "LogicalLimit",
    "LogicalNode",
    "LogicalProject",
    "LogicalScan",
    "LogicalSort",
    "LogicalSubquery",
    "OrderItem",
    "ParseError",
    "PhysicalPlanner",
    "PlanError",
    "QueryExecutor",
    "QueryOutcome",
    "SelectItem",
    "SelectStatement",
    "Star",
    "SubqueryRef",
    "TPCH_TABLES",
    "TableRef",
    "TableSchema",
    "Token",
    "TokenKind",
    "UnaryOp",
    "UnsupportedFeature",
    "compile_kernel",
    "compile_sql",
    "engine_for",
    "eval_expr",
    "execute_plan",
    "execute_sql",
    "explain",
    "generate_database",
    "like_to_glob",
    "parse",
    "plan_schema",
    "plan_statement",
    "run_query",
    "scans_in",
    "sql_like",
    "tokenize",
]

#: The Fig. 1 query: TPC-H Q9 in the Swift programming language.
FIG1_QUERY = """
select nation, o_year, sum(amount) as sum_profit
from (
    select n_name as nation, substr(o_orderdate, 1, 4) as o_year,
        l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity as amount
    from tpch_supplier s
    join tpch_lineitem l on s.s_suppkey = l.l_suppkey
    join tpch_partsupp ps on ps.ps_suppkey = l.l_suppkey and ps.ps_partkey = l.l_partkey
    join tpch_part p on p.p_partkey = l.l_partkey
    join tpch_orders o on o.o_orderkey = l.l_orderkey
    join tpch_nation n on s.s_nationkey = n.n_nationkey
    where p_name like '%green%'
)
group by nation, o_year
order by nation, o_year desc
limit 999999;
"""
