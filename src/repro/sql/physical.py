"""Physical planner: logical plan -> Swift job DAG.

Lowers a logical plan into the stage DAG the runtime executes.  Every scan
becomes an M stage sized from catalog statistics; joins become J stages with
``MergeJoin``+``MergeSort`` (sort-merge is Swift's default join strategy,
which is why join stages are blocking, as in Fig. 4); aggregates and sorts
become R stages; the top of the plan gets an ad-hoc sink.  Cardinalities
flow bottom-up with textbook selectivity defaults.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.dag import Edge, JobDAG, Stage
from ..core.operators import Operator, OperatorKind as K
from .catalog import Catalog, DEFAULT_CATALOG
from .logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalSubquery,
    PlanError,
)

#: Default selectivities used by the cardinality estimator.
FILTER_SELECTIVITY = 0.3
JOIN_FANOUT = 0.8
AGGREGATE_REDUCTION = 0.02

#: Bytes of input one scan task handles (matches the workload generator).
SCAN_SPLIT_BYTES = 800e6
#: Rows one intermediate-stage task handles.
ROWS_PER_TASK = 2_000_000.0


@dataclass
class _StageDraft:
    """A stage under construction plus its output estimate."""

    name: str
    rows: float
    bytes_out: float
    stage: Stage


@dataclass
class PhysicalPlanner:
    """Builds a :class:`JobDAG` from a logical plan."""

    catalog: Catalog = field(default_factory=lambda: DEFAULT_CATALOG)
    scale_factor: float = 1.0

    def __post_init__(self) -> None:
        self._stages: list[Stage] = []
        self._edges: list[Edge] = []
        self._counter = {"M": 0, "J": 0, "R": 0}

    def plan(self, root: LogicalNode, job_id: str = "sql_job") -> JobDAG:
        """Lower a logical plan into a validated Swift job DAG."""
        self._stages, self._edges = [], []
        self._counter = {"M": 0, "J": 0, "R": 0}
        draft = self._lower(root)
        sink = self._new_stage(
            "R", tasks=1,
            operators=(Operator(K.SHUFFLE_READ), Operator(K.ADHOC_SINK)),
            rows=min(draft.rows, 1e6),
            bytes_out=1e6,
        )
        self._edges.append(Edge(draft.name, sink.name))
        dag = JobDAG(job_id, self._stages, self._edges)
        dag.validate()
        return dag

    # ------------------------------------------------------------------
    def _name(self, prefix: str) -> str:
        self._counter[prefix] += 1
        total = sum(self._counter.values())
        return f"{prefix}{total}"

    def _new_stage(
        self,
        prefix: str,
        tasks: int,
        operators: tuple[Operator, ...],
        rows: float,
        bytes_out: float,
        scan_bytes: float = 0.0,
    ) -> _StageDraft:
        name = self._name(prefix)
        stage = Stage(
            name=name,
            task_count=max(1, tasks),
            operators=operators,
            scan_bytes_per_task=scan_bytes / max(1, tasks),
            output_bytes_per_task=bytes_out / max(1, tasks),
        )
        self._stages.append(stage)
        return _StageDraft(name=name, rows=rows, bytes_out=bytes_out, stage=stage)

    # ------------------------------------------------------------------
    def _lower(self, node: LogicalNode) -> _StageDraft:
        if isinstance(node, LogicalScan):
            return self._lower_scan(node, selectivity=1.0)
        if isinstance(node, LogicalFilter):
            # Push filters into scans where possible; otherwise they ride
            # along inside the child's stage (filters never block).
            if isinstance(node.child, LogicalScan):
                return self._lower_scan(node.child, selectivity=FILTER_SELECTIVITY)
            child = self._lower(node.child)
            child.rows *= FILTER_SELECTIVITY
            child.bytes_out *= FILTER_SELECTIVITY
            return child
        if isinstance(node, LogicalSubquery):
            return self._lower(node.child)
        if isinstance(node, LogicalJoin):
            left = self._lower(node.left)
            right = self._lower(node.right)
            rows = max(left.rows, right.rows) * JOIN_FANOUT
            bytes_out = (left.bytes_out + right.bytes_out) * JOIN_FANOUT / 2
            tasks = self._tasks_for_rows(rows)
            stage = self._new_stage(
                "J", tasks=tasks,
                operators=(
                    Operator(K.SHUFFLE_READ),
                    Operator(K.MERGE_JOIN, str(node.condition)),
                    Operator(K.MERGE_SORT),
                    Operator(K.SHUFFLE_WRITE),
                ),
                rows=rows, bytes_out=bytes_out,
            )
            self._edges.append(Edge(left.name, stage.name))
            self._edges.append(Edge(right.name, stage.name))
            return stage
        if isinstance(node, LogicalAggregate):
            child = self._lower(node.child)
            rows = max(1.0, child.rows * AGGREGATE_REDUCTION)
            bytes_out = max(1e3, child.bytes_out * AGGREGATE_REDUCTION)
            stage = self._new_stage(
                "R", tasks=self._tasks_for_rows(rows * 16),
                operators=(
                    Operator(K.SHUFFLE_READ),
                    Operator(K.STREAMED_AGGREGATE),
                    Operator(K.SHUFFLE_WRITE),
                ),
                rows=rows, bytes_out=bytes_out,
            )
            self._edges.append(Edge(child.name, stage.name))
            return stage
        if isinstance(node, LogicalProject):
            # Projection is free: it rides in the child stage.
            return self._lower(node.child)
        if isinstance(node, LogicalSort):
            child = self._lower(node.child)
            stage = self._new_stage(
                "R", tasks=self._tasks_for_rows(child.rows),
                operators=(
                    Operator(K.SHUFFLE_READ),
                    Operator(K.SORT_BY),
                    Operator(K.SHUFFLE_WRITE),
                ),
                rows=child.rows, bytes_out=child.bytes_out,
            )
            self._edges.append(Edge(child.name, stage.name))
            return stage
        if isinstance(node, LogicalLimit):
            child = self._lower(node.child)
            child.rows = min(child.rows, float(node.count))
            return child
        raise PlanError(f"cannot lower {node!r}")

    def _lower_scan(self, node: LogicalScan, selectivity: float) -> _StageDraft:
        schema = self.catalog.resolve_table(node.table)
        total_bytes = schema.bytes_at(self.scale_factor)
        rows = schema.rows_at(self.scale_factor) * selectivity
        tasks = max(1, math.ceil(total_bytes / SCAN_SPLIT_BYTES))
        operators = [Operator(K.TABLE_SCAN, schema.name)]
        if selectivity < 1.0:
            operators.append(Operator(K.FILTER))
        operators.append(Operator(K.SHUFFLE_WRITE))
        return self._new_stage(
            "M", tasks=tasks,
            operators=tuple(operators),
            rows=rows,
            bytes_out=total_bytes * selectivity,
            scan_bytes=total_bytes,
        )

    def _tasks_for_rows(self, rows: float) -> int:
        return max(1, min(1024, math.ceil(rows / ROWS_PER_TASK)))


def compile_sql(
    sql: str,
    catalog: Catalog | None = None,
    scale_factor: float = 1.0,
    job_id: str = "sql_job",
) -> JobDAG:
    """Full front-end path: SQL text -> parsed AST -> logical plan -> DAG.

    This is the Fig. 1 pipeline: a Swift-language job is compiled to the
    DAG model that the scheduler consumes.
    """
    from .logical import plan_statement
    from .parser import parse

    statement = parse(sql)
    plan = plan_statement(statement, catalog or DEFAULT_CATALOG)
    planner = PhysicalPlanner(
        catalog=catalog or DEFAULT_CATALOG, scale_factor=scale_factor
    )
    return planner.plan(plan, job_id=job_id)
