"""Numpy-backed columnar storage: typed vectors, null bitmaps, dictionaries.

The physical layout of the columnar SQL engine:

* :class:`ColumnVector` — one column of one batch/table.  Values live in a
  typed ``np.ndarray`` (``int64``/``float64``/``bool``), NULLs in a
  separate boolean bitmap (``True`` = NULL), and string columns are
  dictionary-encoded: ``int32`` codes into a *sorted* array of unique
  values, so equality and ordering can be decided per unique value (or
  directly on the codes) instead of per row.  Columns whose values don't
  fit a single scalar type fall back to ``kind="object"`` — a Python-object
  array that every kernel handles with exact row-engine semantics.
* :class:`ColumnBatch` — a batch of rows as a mapping from visible column
  name (bare and binding-qualified) to :class:`ColumnVector`; qualified
  aliases share the *same vector object* so qualification is free.
* :class:`ColumnTable` — a columnar-native base table.  It iterates as row
  dicts so the row engine and ``plan_schema`` work unchanged, while the
  columnar scan slices its vectors with zero copies.

Python rows cross the boundary only in ``from_rows``/``to_rows`` — the
engine interior is arrays end to end.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

import numpy as np

Row = dict[str, object]

#: Column kinds. "str" is dictionary-encoded; "object" is the exact-semantics
#: fallback for mixed-type or exotic values.
KINDS = ("int", "float", "bool", "str", "object")

_EMPTY_DICT = np.empty(0, dtype=np.str_)


def _object_array(values: Sequence) -> np.ndarray:
    # np.array() would try to broadcast nested sequences; fromiter never does.
    return np.fromiter(values, dtype=object, count=len(values))


class ColumnVector:
    """One typed column: data array + optional null bitmap (+ dictionary)."""

    __slots__ = ("kind", "data", "mask", "dictionary")

    def __init__(
        self,
        kind: str,
        data: np.ndarray,
        mask: Optional[np.ndarray] = None,
        dictionary: Optional[np.ndarray] = None,
    ) -> None:
        self.kind = kind
        self.data = data
        #: Boolean bitmap, ``True`` = NULL; ``None`` means no NULLs.  For
        #: ``object`` columns the data itself holds ``None`` at NULL lanes
        #: and the mask (when present) mirrors it.
        self.mask = mask
        #: Sorted unique values for ``kind == "str"`` (``data`` holds codes).
        self.dictionary = dictionary

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nulls = 0 if self.mask is None else int(self.mask.sum())
        return f"ColumnVector(kind={self.kind!r}, n={len(self)}, nulls={nulls})"

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, values: Sequence) -> "ColumnVector":
        """Infer the tightest kind for ``values`` and encode them.

        All-int -> int64, all-float -> float64, all-bool -> bool, all-str ->
        dictionary codes; anything mixed (including int+float, to preserve
        the exact Python types the row engine would return) -> object.
        """
        n = len(values)
        types = set(map(type, values))
        has_null = type(None) in types
        types.discard(type(None))
        mask: Optional[np.ndarray] = None
        if has_null:
            mask = np.fromiter((v is None for v in values), np.bool_, count=n)
        if types == {bool}:
            if has_null:
                data = np.fromiter(
                    (v is not None and v for v in values), np.bool_, count=n
                )
            else:
                data = np.fromiter(values, np.bool_, count=n)
            return cls("bool", data, mask)
        if types == {int}:
            try:
                if has_null:
                    data = np.fromiter(
                        (0 if v is None else v for v in values), np.int64, count=n
                    )
                else:
                    data = np.fromiter(values, np.int64, count=n)
            except OverflowError:
                return cls("object", _object_array(values), mask)
            return cls("int", data, mask)
        if types == {float}:
            if has_null:
                data = np.fromiter(
                    (0.0 if v is None else v for v in values), np.float64, count=n
                )
            else:
                data = np.fromiter(values, np.float64, count=n)
            return cls("float", data, mask)
        if types == {str}:
            if has_null:
                # Build the dictionary from valid values only — NULL lanes
                # must not inject entries the row engine never sees (kernels
                # evaluate scalar functions once per dictionary entry).
                assert mask is not None
                valid = [v for v in values if v is not None]
                dictionary, vcodes = np.unique(
                    np.array(valid, dtype=np.str_), return_inverse=True
                )
                codes = np.zeros(n, np.int64)
                codes[~mask] = vcodes
                return cls("str", codes.astype(np.int32), mask, dictionary)
            filled = np.array(list(values), dtype=np.str_)
            dictionary, codes = np.unique(filled, return_inverse=True)
            return cls("str", codes.astype(np.int32), mask, dictionary)
        return cls("object", _object_array(values), mask)

    @classmethod
    def empty(cls, kind: str) -> "ColumnVector":
        """A zero-length vector of ``kind`` (typed schema for empty tables)."""
        if kind == "int":
            return cls("int", np.empty(0, np.int64))
        if kind == "float":
            return cls("float", np.empty(0, np.float64))
        if kind == "bool":
            return cls("bool", np.empty(0, np.bool_))
        if kind == "str":
            return cls("str", np.empty(0, np.int32), None, _EMPTY_DICT)
        return cls("object", np.empty(0, object))

    @classmethod
    def all_null(cls, n: int) -> "ColumnVector":
        """``n`` NULLs (LEFT JOIN fill when the build side is empty)."""
        return cls("object", np.full(n, None, object), np.ones(n, np.bool_))

    @classmethod
    def constant(cls, value: object, n: int) -> "ColumnVector":
        """Broadcast one scalar to ``n`` lanes."""
        if value is None:
            return cls.all_null(n)
        t = type(value)
        if t is bool:
            return cls("bool", np.full(n, value, np.bool_))
        if t is int:
            try:
                return cls("int", np.full(n, value, np.int64))
            except OverflowError:
                pass
        elif t is float:
            return cls("float", np.full(n, value, np.float64))
        elif t is str:
            return cls(
                "str", np.zeros(n, np.int32), None, np.array([value], np.str_)
            )
        data = np.empty(n, object)
        for i in range(n):
            data[i] = value
        return cls("object", data, None)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def null_mask(self) -> np.ndarray:
        """The null bitmap, materialising zeros when there are no NULLs."""
        if self.mask is None:
            return np.zeros(len(self.data), np.bool_)
        return self.mask

    def has_nulls(self) -> bool:
        return self.mask is not None and bool(self.mask.any())

    def to_pylist(self) -> list:
        """Decode to plain Python values (``None`` for NULL lanes)."""
        if self.kind == "str":
            out = self.dictionary[self.data].tolist()
        else:
            out = self.data.tolist()
        mask = self.mask
        if mask is not None and mask.any():
            for i in np.flatnonzero(mask).tolist():
                out[i] = None
        return out

    def value_at(self, i: int) -> object:
        """Decode a single lane."""
        if self.mask is not None and self.mask[i]:
            return None
        if self.kind == "str":
            return str(self.dictionary[self.data[i]])
        v = self.data[i]
        return v.item() if isinstance(v, np.generic) else v

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def take(self, indexes: np.ndarray) -> "ColumnVector":
        """Fancy-index gather; the dictionary is shared, never copied."""
        mask = self.mask[indexes] if self.mask is not None else None
        return ColumnVector(self.kind, self.data[indexes], mask, self.dictionary)

    def slice(self, start: int, stop: int) -> "ColumnVector":
        """Zero-copy contiguous slice."""
        mask = self.mask[start:stop] if self.mask is not None else None
        return ColumnVector(self.kind, self.data[start:stop], mask, self.dictionary)

    @staticmethod
    def concat(parts: Sequence["ColumnVector"]) -> "ColumnVector":
        """Concatenate vectors, merging dictionaries when they differ.

        Heterogeneous kinds (batches whose per-chunk type inference
        disagreed) decode and re-infer over the full value list, so the
        result is independent of batch boundaries.
        """
        if len(parts) == 1:
            return parts[0]
        kinds = {p.kind for p in parts}
        if len(kinds) == 1 and "object" not in kinds:
            kind = parts[0].kind
            mask = _concat_masks(parts)
            if kind != "str":
                return ColumnVector(
                    kind, np.concatenate([p.data for p in parts]), mask
                )
            first = parts[0].dictionary
            if all(p.dictionary is first for p in parts[1:]):
                data = np.concatenate([p.data for p in parts])
                return ColumnVector("str", data, mask, first)
            dictionary = np.unique(np.concatenate([p.dictionary for p in parts]))
            data = np.concatenate([
                dictionary.searchsorted(p.dictionary).astype(np.int32)[p.data]
                for p in parts
            ])
            return ColumnVector("str", data, mask, dictionary)
        merged: list = []
        for p in parts:
            merged.extend(p.to_pylist())
        return ColumnVector.from_values(merged)


def _concat_masks(parts: Sequence[ColumnVector]) -> Optional[np.ndarray]:
    if all(p.mask is None for p in parts):
        return None
    return np.concatenate([p.null_mask() for p in parts])


# ----------------------------------------------------------------------
# Column batches
# ----------------------------------------------------------------------

class ColumnBatch:
    """A batch of rows stored as parallel typed columns.

    ``columns`` maps every visible column name — bare (``l_suppkey``) and
    binding-qualified (``l.l_suppkey``) — to a :class:`ColumnVector` of
    ``length`` lanes.  Qualified aliases share the *same vector object* as
    their bare column, so qualification is free per batch instead of per
    row.  Plain Python lists are accepted for backwards compatibility and
    encoded on construction (identical list objects stay aliased).
    """

    __slots__ = ("names", "columns", "length")

    def __init__(
        self,
        names: Sequence[str],
        columns: dict[str, Union[ColumnVector, list]],
        length: int,
    ) -> None:
        self.names = list(names)
        encoded: dict[str, ColumnVector] = {}
        made: dict[int, ColumnVector] = {}
        for name, col in columns.items():
            if isinstance(col, ColumnVector):
                encoded[name] = col
            else:
                vec = made.get(id(col))
                if vec is None:
                    vec = made[id(col)] = ColumnVector.from_values(col)
                encoded[name] = vec
        self.columns = encoded
        self.length = length

    @classmethod
    def from_rows(cls, rows: Sequence[Row], names: Sequence[str]) -> "ColumnBatch":
        """Transpose homogeneous row dicts into a batch (engine boundary)."""
        columns: dict[str, Union[ColumnVector, list]] = {
            n: ColumnVector.from_values([row[n] for row in rows]) for n in names
        }
        return cls(list(names), columns, len(rows))

    def to_rows(self) -> list[Row]:
        """Transpose the batch back into row dicts (engine boundary)."""
        names = self.names
        if not names:
            return [{} for _ in range(self.length)]
        decoded: dict[int, list] = {}
        cols: list[list] = []
        for n in names:
            vec = self.columns[n]
            lst = decoded.get(id(vec))
            if lst is None:
                lst = decoded[id(vec)] = vec.to_pylist()
            cols.append(lst)
        return [dict(zip(names, values)) for values in zip(*cols)]


def gather(batch: ColumnBatch, indexes: np.ndarray) -> ColumnBatch:
    """Select ``indexes`` from every column, preserving alias sharing."""
    taken: dict[int, ColumnVector] = {}
    columns: dict[str, Union[ColumnVector, list]] = {}
    for name in batch.names:
        source = batch.columns[name]
        picked = taken.get(id(source))
        if picked is None:
            picked = taken[id(source)] = source.take(indexes)
        columns[name] = picked
    return ColumnBatch(batch.names, columns, len(indexes))


def slice_batch(batch: ColumnBatch, count: int) -> ColumnBatch:
    """The first ``count`` rows of a batch, preserving alias sharing."""
    taken: dict[int, ColumnVector] = {}
    columns: dict[str, Union[ColumnVector, list]] = {}
    for name in batch.names:
        source = batch.columns[name]
        picked = taken.get(id(source))
        if picked is None:
            picked = taken[id(source)] = source.slice(0, count)
        columns[name] = picked
    return ColumnBatch(batch.names, columns, count)


def concat_batches(schema: list[str], batches: list[ColumnBatch]) -> ColumnBatch:
    """Concatenate batches into one, preserving alias sharing."""
    if not batches:
        return ColumnBatch(schema, {n: ColumnVector.empty("object") for n in schema}, 0)
    if len(batches) == 1:
        return batches[0]
    leaders: dict[int, str] = {}
    columns: dict[str, Union[ColumnVector, list]] = {}
    for name in schema:
        lead = leaders.get(id(batches[0].columns[name]))
        if lead is not None:
            columns[name] = columns[lead]
            continue
        leaders[id(batches[0].columns[name])] = name
        columns[name] = ColumnVector.concat([b.columns[name] for b in batches])
    return ColumnBatch(schema, columns, sum(b.length for b in batches))


# ----------------------------------------------------------------------
# Columnar-native tables
# ----------------------------------------------------------------------

class ColumnTable:
    """A base table stored as typed column vectors.

    Duck-types as a sequence of row dicts (``len``, iteration, indexing) so
    the row engine, ``plan_schema``, and existing callers treat it exactly
    like ``list[Row]`` — but the columnar scan slices its vectors directly,
    skipping per-row transposition entirely.  Unlike a ``list``, an empty
    ColumnTable still knows its schema.
    """

    __slots__ = ("names", "columns", "length")

    def __init__(
        self, names: Sequence[str], columns: dict[str, ColumnVector], length: int
    ) -> None:
        self.names = list(names)
        self.columns = columns
        self.length = length

    @classmethod
    def from_rows(
        cls, rows: Sequence[Row], names: Optional[Sequence[str]] = None
    ) -> "ColumnTable":
        """Encode row dicts column by column (engine boundary)."""
        if names is None:
            names = list(rows[0].keys()) if rows else []
        columns = {
            n: ColumnVector.from_values([row[n] for row in rows]) for n in names
        }
        return cls(list(names), columns, len(rows))

    @classmethod
    def from_columns(
        cls, data: dict[str, Union[ColumnVector, Sequence]]
    ) -> "ColumnTable":
        """Build from column-major data (lists or ready-made vectors)."""
        columns: dict[str, ColumnVector] = {}
        for name, values in data.items():
            if isinstance(values, ColumnVector):
                columns[name] = values
            else:
                columns[name] = ColumnVector.from_values(list(values))
        lengths = {len(c) for c in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        length = lengths.pop() if lengths else 0
        return cls(list(data), columns, length)

    def to_rows(self) -> list[Row]:
        """Decode the whole table to row dicts."""
        names = self.names
        if not names:
            return [{} for _ in range(self.length)]
        cols = [self.columns[n].to_pylist() for n in names]
        return [dict(zip(names, values)) for values in zip(*cols)]

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[Row]:
        return iter(self.to_rows())

    def __getitem__(self, i: int) -> Row:
        return {n: self.columns[n].value_at(i) for n in self.names}
