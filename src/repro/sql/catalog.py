"""Catalog: TPC-H schema and table statistics for planning.

Row counts follow the TPC-H specification at scale factor 1; the physical
planner multiplies by the configured scale factor (1000 = the paper's 1 TB
run) to size stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .batch import ColumnTable


@dataclass(frozen=True)
class Column:
    """One column: name and coarse data type."""
    name: str
    dtype: str  # "int" | "float" | "str" | "date"

    @property
    def numpy_kind(self) -> str:
        """The columnar storage kind (dates are stored as strings)."""
        if self.dtype in ("int", "float"):
            return self.dtype
        return "str"


@dataclass(frozen=True)
class TableSchema:
    """A table's columns plus its planning statistics."""
    name: str
    columns: tuple[Column, ...]
    #: Rows at scale factor 1.
    base_rows: int
    #: Average bytes per row on disk.
    bytes_per_row: float

    def column_names(self) -> list[str]:
        """The column names in schema order."""
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        """True when the schema contains ``name``."""
        return any(c.name == name for c in self.columns)

    def rows_at(self, scale_factor: float) -> int:
        """Row count at a TPC-H scale factor (nation/region are fixed)."""
        fixed = {"nation", "region"}
        if self.name in fixed:
            return self.base_rows
        return max(1, int(self.base_rows * scale_factor))

    def bytes_at(self, scale_factor: float) -> float:
        """On-disk bytes at a TPC-H scale factor."""
        return self.rows_at(scale_factor) * self.bytes_per_row

    def empty_table(self) -> "ColumnTable":
        """A zero-row columnar table typed after this schema.

        Unlike an empty row list, the result still carries the schema, so
        the columnar engine can scan it without a catalog lookup.
        """
        from .batch import ColumnTable, ColumnVector

        return ColumnTable(
            self.column_names(),
            {c.name: ColumnVector.empty(c.numpy_kind) for c in self.columns},
            0,
        )


def _cols(*specs: str) -> tuple[Column, ...]:
    out = []
    for spec in specs:
        name, dtype = spec.split(":")
        out.append(Column(name, dtype))
    return tuple(out)


TPCH_TABLES: dict[str, TableSchema] = {
    "region": TableSchema(
        "region", _cols("r_regionkey:int", "r_name:str", "r_comment:str"),
        base_rows=5, bytes_per_row=80,
    ),
    "nation": TableSchema(
        "nation",
        _cols("n_nationkey:int", "n_name:str", "n_regionkey:int", "n_comment:str"),
        base_rows=25, bytes_per_row=90,
    ),
    "supplier": TableSchema(
        "supplier",
        _cols("s_suppkey:int", "s_name:str", "s_address:str", "s_nationkey:int",
              "s_phone:str", "s_acctbal:float", "s_comment:str"),
        base_rows=10_000, bytes_per_row=140,
    ),
    "customer": TableSchema(
        "customer",
        _cols("c_custkey:int", "c_name:str", "c_address:str", "c_nationkey:int",
              "c_phone:str", "c_acctbal:float", "c_mktsegment:str", "c_comment:str"),
        base_rows=150_000, bytes_per_row=160,
    ),
    "part": TableSchema(
        "part",
        _cols("p_partkey:int", "p_name:str", "p_mfgr:str", "p_brand:str",
              "p_type:str", "p_size:int", "p_container:str", "p_retailprice:float",
              "p_comment:str"),
        base_rows=200_000, bytes_per_row=120,
    ),
    "partsupp": TableSchema(
        "partsupp",
        _cols("ps_partkey:int", "ps_suppkey:int", "ps_availqty:int",
              "ps_supplycost:float", "ps_comment:str"),
        base_rows=800_000, bytes_per_row=145,
    ),
    "orders": TableSchema(
        "orders",
        _cols("o_orderkey:int", "o_custkey:int", "o_orderstatus:str",
              "o_totalprice:float", "o_orderdate:str", "o_orderpriority:str",
              "o_clerk:str", "o_shippriority:int", "o_comment:str"),
        base_rows=1_500_000, bytes_per_row=115,
    ),
    "lineitem": TableSchema(
        "lineitem",
        _cols("l_orderkey:int", "l_partkey:int", "l_suppkey:int",
              "l_linenumber:int", "l_quantity:float", "l_extendedprice:float",
              "l_discount:float", "l_tax:float", "l_returnflag:str",
              "l_linestatus:str", "l_shipdate:str", "l_commitdate:str",
              "l_receiptdate:str", "l_shipinstruct:str", "l_shipmode:str",
              "l_comment:str"),
        base_rows=6_000_000, bytes_per_row=125,
    ),
}


class CatalogError(KeyError):
    """Unknown table or ambiguous column."""


@dataclass
class Catalog:
    """A set of table schemas plus lookup helpers.

    The default catalog holds the TPC-H schema; tests and examples may
    register extra tables.  Table names are matched with or without a
    ``tpch_`` prefix, matching Fig. 1's naming (``tpch_lineitem`` etc.).
    """

    tables: dict[str, TableSchema] = field(default_factory=lambda: dict(TPCH_TABLES))

    def resolve_table(self, name: str) -> TableSchema:
        """Look up a table, accepting the Fig. 1 ``tpch_`` prefix."""
        key = name.lower()
        if key.startswith("tpch_"):
            key = key[len("tpch_"):]
        if key not in self.tables:
            raise CatalogError(f"unknown table {name!r}")
        return self.tables[key]

    def register(self, schema: TableSchema) -> None:
        """Add or replace a table schema."""
        self.tables[schema.name] = schema

    def find_column(self, column: str) -> list[str]:
        """Tables containing ``column`` (for unqualified resolution)."""
        return [
            name for name, schema in self.tables.items() if schema.has_column(column)
        ]


DEFAULT_CATALOG = Catalog()
