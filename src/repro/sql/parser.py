"""Recursive-descent parser for the Swift SQL dialect.

Covers the constructs Fig. 1 uses: SELECT lists with aliases and arithmetic,
FROM with base tables and parenthesised subqueries, chained JOIN ... ON with
multi-term conditions, WHERE with LIKE, GROUP BY, ORDER BY ... DESC, LIMIT.
"""

from __future__ import annotations

from typing import Optional, Union

from .ast import (
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Expr,
    InList,
    FunctionCall,
    JoinClause,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
)
from .lexer import LexError, Token, TokenKind, tokenize


class ParseError(ValueError):
    """Raised when the source does not conform to the grammar."""


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        """The lookahead token."""
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self.current
        self._pos += 1
        return token

    def _check_keyword(self, *words: str) -> bool:
        return self.current.kind == TokenKind.KEYWORD and self.current.lowered in words

    def _accept_keyword(self, *words: str) -> bool:
        if self._check_keyword(*words):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise ParseError(
                f"expected {word.upper()!r}, found {self.current.text!r} "
                f"at position {self.current.position}"
            )

    def _expect(self, kind: TokenKind) -> Token:
        if self.current.kind != kind:
            raise ParseError(
                f"expected {kind.value}, found {self.current.text!r} "
                f"at position {self.current.position}"
            )
        return self._advance()

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> SelectStatement:
        """Parse a full SELECT statement up to EOF."""
        statement = self._parse_select()
        if self.current.kind == TokenKind.SEMICOLON:
            self._advance()
        self._expect(TokenKind.EOF)
        return statement

    def _parse_select(self) -> SelectStatement:
        self._expect_keyword("select")
        statement = SelectStatement()
        statement.distinct = self._accept_keyword("distinct")
        statement.select_items.append(self._parse_select_item())
        while self.current.kind == TokenKind.COMMA:
            self._advance()
            statement.select_items.append(self._parse_select_item())
        if self._accept_keyword("from"):
            statement.from_table = self._parse_table_ref()
            while self._check_keyword("join", "inner", "left", "right"):
                statement.joins.append(self._parse_join())
        if self._accept_keyword("where"):
            statement.where = self._parse_expr()
        if self._check_keyword("group"):
            self._advance()
            self._expect_keyword("by")
            statement.group_by.append(self._parse_expr())
            while self.current.kind == TokenKind.COMMA:
                self._advance()
                statement.group_by.append(self._parse_expr())
        if self._accept_keyword("having"):
            statement.having = self._parse_expr()
        if self._check_keyword("order"):
            self._advance()
            self._expect_keyword("by")
            statement.order_by.append(self._parse_order_item())
            while self.current.kind == TokenKind.COMMA:
                self._advance()
                statement.order_by.append(self._parse_order_item())
        if self._accept_keyword("limit"):
            token = self._expect(TokenKind.NUMBER)
            statement.limit = int(float(token.text))
        return statement

    def _parse_select_item(self) -> SelectItem:
        if self.current.kind == TokenKind.STAR:
            self._advance()
            return SelectItem(expr=Star())
        expr = self._parse_expr()
        alias: Optional[str] = None
        if self._accept_keyword("as"):
            alias = self._expect(TokenKind.IDENT).text
        elif self.current.kind == TokenKind.IDENT:
            alias = self._advance().text
        return SelectItem(expr=expr, alias=alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self._parse_expr()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return OrderItem(expr=expr, descending=descending)

    def _parse_table_ref(self) -> Union[TableRef, SubqueryRef]:
        if self.current.kind == TokenKind.LPAREN:
            self._advance()
            subquery = self._parse_select()
            self._expect(TokenKind.RPAREN)
            alias = None
            self._accept_keyword("as")
            if self.current.kind == TokenKind.IDENT:
                alias = self._advance().text
            return SubqueryRef(query=subquery, alias=alias)
        name = self._expect(TokenKind.IDENT).text
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect(TokenKind.IDENT).text
        elif self.current.kind == TokenKind.IDENT:
            alias = self._advance().text
        return TableRef(name=name, alias=alias)

    def _parse_join(self) -> JoinClause:
        kind = "inner"
        if self._accept_keyword("left"):
            kind = "left"
            self._accept_keyword("outer")
        elif self._accept_keyword("right"):
            kind = "right"
            self._accept_keyword("outer")
        elif self._accept_keyword("inner"):
            kind = "inner"
        self._expect_keyword("join")
        table = self._parse_table_ref()
        self._expect_keyword("on")
        condition = self._parse_expr()
        return JoinClause(kind=kind, table=table, condition=condition)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._accept_keyword("or"):
            left = BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._accept_keyword("and"):
            left = BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self._accept_keyword("not"):
            return UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        if self.current.kind == TokenKind.OPERATOR and self.current.text in (
            "=", "<>", "!=", "<", ">", "<=", ">=",
        ):
            op = self._advance().text
            if op == "!=":
                op = "<>"
            return BinaryOp(op, left, self._parse_additive())
        if self._check_keyword("like"):
            self._advance()
            return BinaryOp("like", left, self._parse_additive())
        if self._check_keyword("in"):
            self._advance()
            return self._parse_in_list(left, negated=False)
        if self._check_keyword("not"):
            # "x NOT LIKE y" / "x NOT IN (...)"
            save = self._pos
            self._advance()
            if self._accept_keyword("like"):
                return UnaryOp("not", BinaryOp("like", left, self._parse_additive()))
            if self._accept_keyword("in"):
                return self._parse_in_list(left, negated=True)
            self._pos = save
        if self._check_keyword("between"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return BinaryOp(
                "and", BinaryOp(">=", left, low), BinaryOp("<=", left, high)
            )
        if self._check_keyword("is"):
            self._advance()
            negated = self._accept_keyword("not")
            self._expect_keyword("null")
            test = FunctionCall("is_null", (left,))
            return UnaryOp("not", test) if negated else test
        return left

    def _parse_in_list(self, left: Expr, negated: bool) -> InList:
        self._expect(TokenKind.LPAREN)
        values = [self._parse_expr()]
        while self.current.kind == TokenKind.COMMA:
            self._advance()
            values.append(self._parse_expr())
        self._expect(TokenKind.RPAREN)
        return InList(expr=left, values=tuple(values), negated=negated)

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self.current.kind == TokenKind.OPERATOR and self.current.text in ("+", "-", "||"):
            op = self._advance().text
            left = BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while (
            self.current.kind == TokenKind.STAR
            or (self.current.kind == TokenKind.OPERATOR and self.current.text in ("/", "%"))
        ):
            op = "*" if self.current.kind == TokenKind.STAR else self.current.text
            self._advance()
            left = BinaryOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expr:
        if self.current.kind == TokenKind.OPERATOR and self.current.text == "-":
            self._advance()
            return UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self.current
        if token.kind == TokenKind.NUMBER:
            self._advance()
            value = float(token.text)
            return Literal(int(value) if value.is_integer() and "." not in token.text else value)
        if token.kind == TokenKind.STRING:
            self._advance()
            return Literal(token.text)
        if token.kind == TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        if token.kind == TokenKind.KEYWORD and token.lowered == "null":
            self._advance()
            return Literal(None)
        if token.kind == TokenKind.KEYWORD and token.lowered == "case":
            return self._parse_case()
        if token.kind == TokenKind.IDENT:
            return self._parse_name_or_call()
        raise ParseError(
            f"unexpected token {token.text!r} at position {token.position}"
        )

    def _parse_case(self) -> CaseExpr:
        self._expect_keyword("case")
        whens: list[tuple[Expr, Expr]] = []
        while self._accept_keyword("when"):
            condition = self._parse_expr()
            self._expect_keyword("then")
            whens.append((condition, self._parse_expr()))
        if not whens:
            raise ParseError("CASE needs at least one WHEN arm")
        default = self._parse_expr() if self._accept_keyword("else") else None
        self._expect_keyword("end")
        return CaseExpr(whens=tuple(whens), default=default)

    def _parse_name_or_call(self) -> Expr:
        name = self._expect(TokenKind.IDENT).text
        if self.current.kind == TokenKind.LPAREN:
            self._advance()
            distinct = self._accept_keyword("distinct")
            args: list[Expr] = []
            if self.current.kind == TokenKind.STAR:
                self._advance()
                args.append(Star())
            elif self.current.kind != TokenKind.RPAREN:
                args.append(self._parse_expr())
                while self.current.kind == TokenKind.COMMA:
                    self._advance()
                    args.append(self._parse_expr())
            self._expect(TokenKind.RPAREN)
            return FunctionCall(name.lower(), tuple(args), distinct=distinct)
        if self.current.kind == TokenKind.DOT:
            self._advance()
            if self.current.kind == TokenKind.STAR:
                self._advance()
                return Star(qualifier=name)
            column = self._expect(TokenKind.IDENT).text
            return ColumnRef(name=column, qualifier=name)
        return ColumnRef(name=name)


def parse(source: str) -> SelectStatement:
    """Parse one SELECT statement."""
    try:
        tokens = tokenize(source)
    except LexError as exc:
        raise ParseError(str(exc)) from exc
    return Parser(tokens).parse_statement()
