"""Vectorized columnar execution engine on numpy.

Operators exchange :class:`~repro.sql.batch.ColumnBatch` objects — typed
``np.ndarray`` columns with null bitmaps and dictionary-encoded strings
(:mod:`repro.sql.batch`) — and scalar expressions are compiled once per
query into array kernels (:mod:`repro.sql.kernels`).  The physical
operators are array programs:

* **filter** — kernel truthiness mask, ``np.flatnonzero`` + fancy-index
  gather;
* **aggregate** — group assignment via ``np.unique``-based factorization
  remapped to first-seen order, then ``np.bincount`` (whose sequential
  accumulation matches the row engine's ``total += v`` float-for-float)
  and ``np.minimum.at``/``np.maximum.at`` segmented reductions;
* **join** — equi-keys pooled into a shared code space (dictionary merge
  for strings, ``np.unique`` for numerics), build side sorted once, probe
  via ``np.searchsorted``, candidate pairs expanded with ``np.repeat``;
* **sort** — successive stable ``np.argsort`` passes, least-significant
  key first, with a null-flag pass replicating the row engine's
  ``_sort_key`` ordering.

Semantics mirror the row executor exactly — NULL propagation,
``and``/``or`` via Python truthiness, LIKE via the shared glob
translation, first-seen group ordering, probe-order hash joins — and any
value shape the typed fast paths can't reproduce bit-for-bit (mixed-type
columns, NaN sort/group keys, DISTINCT aggregates) drops to an exact
Python fallback for that operator.  Differential tests assert identical
output on every TPC-H query and the conformance corpus.

Plans the engine cannot run raise :class:`UnsupportedFeature` at compile
time; the dispatcher (:mod:`repro.sql.dispatch`) catches it and falls back
to the row executor.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterator, Optional, Sequence

import numpy as np

from .ast import BinaryOp, ColumnRef, Expr, FunctionCall, Star
from .batch import (
    ColumnBatch,
    ColumnTable,
    ColumnVector,
    concat_batches,
    gather,
    slice_batch,
)
from .catalog import Catalog
from .executor import (
    Database,
    ExecutionError,
    Row,
    _collect_aggregates,
    _eval_with_aggregates,
    _extract_equi_keys,
    _hashable,
    _sort_key,
)
from .kernels import Kernel, compile_kernel
from .logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalSubquery,
    PlanError,
)

__all__ = [
    "ColumnBatch",
    "ColumnTable",
    "ColumnVector",
    "ColumnarExecutor",
    "DEFAULT_BATCH_SIZE",
    "Kernel",
    "UnsupportedFeature",
    "compile_kernel",
    "compile_plan",
    "walk_ops",
]

#: Rows per batch when a caller asks for a fixed size.  With array kernels
#: the per-batch overhead is one ufunc dispatch per operator, so batches
#: are best measured in the hundreds of thousands; ``batch_size=None``
#: (the default everywhere) goes further and scans whole tables in one
#: batch, capped at :data:`_AUTO_BATCH_CAP` lanes.
DEFAULT_BATCH_SIZE = 65536

_AUTO_BATCH_CAP = 1 << 20

_INT64_MAX = np.iinfo(np.int64).max
_INT64_MIN = np.iinfo(np.int64).min

#: Join keys pooled through float64 stay exact only below 2**53.
_FLOAT_EXACT_INT = 2 ** 53


class UnsupportedFeature(ExecutionError):
    """Plan shape the columnar engine cannot run (dispatch falls back)."""


class _PythonFallback(Exception):
    """Internal: value shape needs the exact row-semantics Python path."""


def _auto_batch_size(n_rows: int) -> int:
    return min(max(n_rows, 1), _AUTO_BATCH_CAP)


def _stable_desc_argsort(keys: np.ndarray) -> np.ndarray:
    """Stable *descending* argsort (ties keep their original order)."""
    n = len(keys)
    return (n - 1) - np.argsort(keys[::-1], kind="stable")[::-1]


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------

class _Op:
    """Base batch operator: produces batches, tracks throughput stats."""

    kind = "op"

    def __init__(self) -> None:
        self.schema: list[str] = []
        self.rows_out = 0
        self.batches_out = 0
        self.seconds = 0.0
        self.detail = ""

    def children(self) -> list["_Op"]:
        return []

    def batches(self) -> Iterator[ColumnBatch]:
        raise NotImplementedError

    def _emit(self, batch: ColumnBatch) -> ColumnBatch:
        self.rows_out += batch.length
        self.batches_out += 1
        return batch

    def stats(self) -> dict[str, object]:
        """Per-operator throughput summary for metrics/tracing."""
        rate = self.rows_out / self.seconds if self.seconds > 0 else 0.0
        return {
            "rows": self.rows_out,
            "batches": self.batches_out,
            "seconds": round(self.seconds, 6),
            "rows_per_s": round(rate, 1),
            "detail": self.detail,
        }


class _UnaryOpBase(_Op):
    def __init__(self, child: _Op) -> None:
        super().__init__()
        self.child = child

    def children(self) -> list[_Op]:
        return [self.child]


class _ScanOp(_Op):
    kind = "scan"

    def __init__(
        self,
        node: LogicalScan,
        database: Database,
        catalog: Optional[Catalog],
        batch_size: Optional[int],
    ) -> None:
        super().__init__()
        rows = database.get(node.table)
        if rows is None:
            raise ExecutionError(f"table {node.table!r} not loaded")
        self.rows = rows
        self.columnar = isinstance(rows, ColumnTable)
        self.binding = node.binding
        self.batch_size = (
            batch_size if batch_size is not None else _auto_batch_size(len(rows))
        )
        self.detail = node.table
        if self.columnar:
            base = list(rows.names)
        elif len(rows):
            base = list(rows[0].keys())
        elif catalog is not None:
            try:
                base = catalog.resolve_table(node.table).column_names()
            except KeyError:
                raise UnsupportedFeature(
                    f"empty table {node.table!r} has no static schema"
                ) from None
        else:
            raise UnsupportedFeature(
                f"empty table {node.table!r} has no static schema"
            )
        self.base_names = base
        aliases = []
        if self.binding:
            aliases = [
                f"{self.binding}.{n}" for n in base
                if "." not in n and f"{self.binding}.{n}" not in base
            ]
        self.schema = base + aliases

    def batches(self) -> Iterator[ColumnBatch]:
        rows, size, binding = self.rows, self.batch_size, self.binding
        total = len(rows)
        for start in range(0, total, size):
            began = perf_counter()
            stop = min(start + size, total)
            if self.columnar:
                columns = {
                    n: rows.columns[n].slice(start, stop)
                    for n in self.base_names
                }
            else:
                chunk = rows[start:stop]
                columns = {
                    n: ColumnVector.from_values([row[n] for row in chunk])
                    for n in self.base_names
                }
            if binding:
                for n in self.base_names:
                    if "." not in n:
                        columns[f"{binding}.{n}"] = columns[n]
            batch = ColumnBatch(self.schema, columns, stop - start)
            self.seconds += perf_counter() - began
            yield self._emit(batch)


class _AliasOp(_UnaryOpBase):
    """FROM-clause subquery: re-qualify child columns under a binding."""

    kind = "subquery"

    def __init__(self, child: _Op, binding: Optional[str]) -> None:
        super().__init__(child)
        self.binding = binding
        self.detail = binding or ""
        if binding:
            self.alias_names = [
                n for n in child.schema if "." not in n
            ]
            extra = [
                f"{binding}.{n}" for n in self.alias_names
                if f"{binding}.{n}" not in child.schema
            ]
            self.schema = child.schema + extra
        else:
            self.alias_names = []
            self.schema = list(child.schema)

    def batches(self) -> Iterator[ColumnBatch]:
        binding = self.binding
        for batch in self.child.batches():
            if not binding:
                yield self._emit(batch)
                continue
            began = perf_counter()
            columns = dict(batch.columns)
            for n in self.alias_names:
                columns[f"{binding}.{n}"] = columns[n]
            out = ColumnBatch(self.schema, columns, batch.length)
            self.seconds += perf_counter() - began
            yield self._emit(out)


class _FilterOp(_UnaryOpBase):
    kind = "filter"

    def __init__(self, child: _Op, predicate: Expr) -> None:
        super().__init__(child)
        self.kernel = compile_kernel(predicate, child.schema)
        self.schema = list(child.schema)
        self.detail = str(predicate)

    def batches(self) -> Iterator[ColumnBatch]:
        for batch in self.child.batches():
            began = perf_counter()
            mask = self.kernel.truth(batch)
            if mask.all():
                out: Optional[ColumnBatch] = batch
            elif mask.any():
                out = gather(batch, np.flatnonzero(mask))
            else:
                out = None
            self.seconds += perf_counter() - began
            if out is not None:
                yield self._emit(out)


class _ProjectOp(_UnaryOpBase):
    kind = "project"

    def __init__(self, child: _Op, node: LogicalProject) -> None:
        super().__init__(child)
        self.items = node.items
        self.distinct = node.distinct
        self.passthrough = (
            len(node.items) == 1 and isinstance(node.items[0].expr, Star)
        )
        self.kernels: list[tuple[Optional[str], Optional[Kernel]]] = []
        names: dict[str, None] = {}
        if self.passthrough:
            names = dict.fromkeys(child.schema)
        else:
            for item in node.items:
                if isinstance(item.expr, Star):
                    self.kernels.append((None, None))
                    names.update(dict.fromkeys(child.schema))
                else:
                    name = item.output_name
                    self.kernels.append(
                        (name, compile_kernel(item.expr, child.schema))
                    )
                    names[name] = None
        self.schema = list(names)
        self.seen: Optional[set] = set() if node.distinct else None

    def batches(self) -> Iterator[ColumnBatch]:
        for batch in self.child.batches():
            began = perf_counter()
            if self.passthrough:
                out = batch
            else:
                columns: dict[str, ColumnVector] = {}
                for name, kernel in self.kernels:
                    if kernel is None:
                        for n in self.child.schema:
                            columns[n] = batch.columns[n]
                    else:
                        columns[name] = kernel.eval(batch)  # type: ignore[index]
                out = ColumnBatch(self.schema, columns, batch.length)
            if self.seen is not None:
                out = self._dedup(out)
            self.seconds += perf_counter() - began
            if out is not None and out.length:
                yield self._emit(out)

    def _dedup(self, batch: ColumnBatch) -> Optional[ColumnBatch]:
        names = batch.names
        cols = [batch.columns[n].to_pylist() for n in names]
        seen = self.seen
        assert seen is not None
        keep: list[int] = []
        for i, values in enumerate(zip(*cols)):
            key = tuple(sorted((n, _hashable(v)) for n, v in zip(names, values)))
            if key not in seen:
                seen.add(key)
                keep.append(i)
        if len(keep) == batch.length:
            return batch
        if not keep:
            return None
        return gather(batch, np.array(keep, np.int64))


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------

def _equality_codes(vec: ColumnVector) -> np.ndarray:
    """Int codes where equal code <=> Python-equal value; NULL lanes -> 0.

    Raises :class:`_PythonFallback` for shapes numpy equality cannot
    reproduce (mixed-type columns; NaN keys, which hash by identity in the
    row engine's group dict).
    """
    if vec.kind == "object":
        raise _PythonFallback
    mask = vec.null_mask()
    if vec.kind == "str":
        return np.where(mask, 0, vec.data.astype(np.int64) + 1)
    data = vec.data
    if vec.kind == "float":
        valid = data[~mask]
        if valid.size and bool(np.isnan(valid).any()):
            raise _PythonFallback
    _, inv = np.unique(data, return_inverse=True)
    return np.where(mask, 0, inv.astype(np.int64) + 1)


def _combine_codes(parts: list[np.ndarray]) -> np.ndarray:
    """Fold per-column codes into one joint code per lane."""
    codes = parts[0]
    for nxt in parts[1:]:
        width = int(nxt.max()) + 1 if nxt.size else 1
        combined = codes * width + nxt
        # Compress after every fold so the product stays far from 2**63.
        _, inv = np.unique(combined, return_inverse=True)
        codes = inv.astype(np.int64)
    return codes


def _first_seen_groups(codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Group ids in first-occurrence order + first lane index per group."""
    uniques, first, inv = np.unique(
        codes, return_index=True, return_inverse=True
    )
    order = np.argsort(first, kind="stable")
    rank = np.empty(len(uniques), np.int64)
    rank[order] = np.arange(len(uniques))
    return rank[inv.astype(np.int64)], first[order]


def _py_groups(
    key_vectors: list[ColumnVector], n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Exact row-engine group assignment (Python dict hashing/equality)."""
    lists = [v.to_pylist() for v in key_vectors]
    group_ids: dict[tuple, int] = {}
    gids = np.empty(n, np.int64)
    reps: list[int] = []
    for i in range(n):
        key = tuple(_hashable(lst[i]) for lst in lists)
        gid = group_ids.get(key)
        if gid is None:
            gid = group_ids[key] = len(reps)
            reps.append(i)
        gids[i] = gid
    return gids, np.array(reps, np.int64)


class _AggCall:
    """One aggregate call: vectorized over all groups at once."""

    __slots__ = ("name", "star", "distinct", "kernel")

    def __init__(self, call: FunctionCall, schema: Sequence[str]) -> None:
        self.name = call.name.lower()
        self.star = bool(call.args) and isinstance(call.args[0], Star)
        if self.star and self.name != "count":
            # The row engine would raise per row; surface the same error.
            raise ExecutionError("* is only valid in select lists and count(*)")
        if not call.args:
            raise ExecutionError(f"{self.name}() needs an argument")
        self.distinct = bool(call.distinct)
        self.kernel = (
            None if self.star else compile_kernel(call.args[0], schema)
        )

    def compute(
        self, table: ColumnBatch, gids: np.ndarray, n_groups: int
    ) -> list:
        """Per-group results, groups in first-seen order."""
        if self.star:
            return np.bincount(gids, minlength=n_groups).tolist()
        values = self.kernel.eval(table)  # type: ignore[union-attr]
        if self.distinct or values.kind == "object":
            return self._py_compute(values.to_pylist(), gids, n_groups)
        valid = ~values.null_mask()
        g_valid = gids[valid]
        name = self.name
        if name == "count":
            return np.bincount(g_valid, minlength=n_groups).tolist()
        if name in ("sum", "avg"):
            counts = np.bincount(g_valid, minlength=n_groups)
            if values.kind == "str":
                # The row engine counts non-null strings but adds nothing.
                totals = np.zeros(n_groups)
            else:
                # bincount accumulates weights sequentially in lane order —
                # bit-identical to the row engine's per-row `total += v`.
                totals = np.bincount(
                    g_valid,
                    weights=values.data[valid].astype(np.float64),
                    minlength=n_groups,
                )
            pairs = zip(totals.tolist(), counts.tolist())
            if name == "sum":
                return [t if c else None for t, c in pairs]
            return [t / c if c else None for t, c in pairs]
        if name not in ("min", "max"):
            raise ExecutionError(f"unknown aggregate {self.name!r}")
        if values.kind == "bool":
            return self._py_compute(values.to_pylist(), gids, n_groups)
        data = values.data[valid]
        if values.kind == "float" and data.size and bool(np.isnan(data).any()):
            # `v < m` with NaN is order-dependent; replay the exact order.
            return self._py_compute(values.to_pylist(), gids, n_groups)
        present = np.bincount(g_valid, minlength=n_groups) > 0
        reduce_at = np.minimum.at if name == "min" else np.maximum.at
        if values.kind == "str":
            sentinel = _INT64_MAX if name == "min" else np.int64(-1)
            out = np.full(n_groups, sentinel, np.int64)
            reduce_at(out, g_valid, data.astype(np.int64))
            dictionary = values.dictionary
            return [
                str(dictionary[c]) if p else None
                for c, p in zip(out.tolist(), present.tolist())
            ]
        if values.kind == "int":
            sentinel_i = _INT64_MAX if name == "min" else _INT64_MIN
            out = np.full(n_groups, sentinel_i, np.int64)
        else:
            out = np.full(n_groups, np.inf if name == "min" else -np.inf)
        reduce_at(out, g_valid, data)
        return [
            c if p else None for c, p in zip(out.tolist(), present.tolist())
        ]

    def _py_compute(self, values: list, gids: np.ndarray, n_groups: int) -> list:
        """Row-engine accumulator semantics, replayed in lane order."""
        counts = [0] * n_groups
        totals = [0.0] * n_groups
        mins: list = [None] * n_groups
        maxs: list = [None] * n_groups
        name = self.name
        pairs = zip(gids.tolist(), values)
        if self.distinct:
            seen: list[set] = [set() for _ in range(n_groups)]
            for g, v in pairs:
                if v is None:
                    continue
                bucket = seen[g]
                if v in bucket:
                    continue
                bucket.add(v)
                counts[g] += 1
                if isinstance(v, (int, float)):
                    totals[g] += v
                if mins[g] is None or v < mins[g]:
                    mins[g] = v
                if maxs[g] is None or v > maxs[g]:
                    maxs[g] = v
        elif name in ("sum", "avg"):
            for g, v in pairs:
                if v is not None:
                    counts[g] += 1
                    if isinstance(v, (int, float)):
                        totals[g] += v
        elif name == "count":
            for g, v in pairs:
                if v is not None:
                    counts[g] += 1
        elif name == "min":
            for g, v in pairs:
                if v is not None and (mins[g] is None or v < mins[g]):
                    mins[g] = v
        elif name == "max":
            for g, v in pairs:
                if v is not None and (maxs[g] is None or v > maxs[g]):
                    maxs[g] = v
        else:
            raise ExecutionError(f"unknown aggregate {name!r}")
        if name == "count":
            return counts
        if name == "sum":
            return [t if c else None for t, c in zip(totals, counts)]
        if name == "avg":
            return [t / c if c else None for t, c in zip(totals, counts)]
        return mins if name == "min" else maxs


class _AggregateOp(_UnaryOpBase):
    kind = "aggregate"

    def __init__(
        self, child: _Op, node: LogicalAggregate, batch_size: Optional[int]
    ) -> None:
        super().__init__(child)
        self.node = node
        self.batch_size = batch_size
        calls: list[FunctionCall] = []
        for item in node.items:
            _collect_aggregates(item.expr, calls)
        if node.having is not None:
            _collect_aggregates(node.having, calls)
        unique = {str(c): c for c in calls}
        self.agg_keys = list(unique)
        self.calls = [_AggCall(c, child.schema) for c in unique.values()]
        self.group_kernels = [
            compile_kernel(g, child.schema) for g in node.group_by
        ]
        names: dict[str, None] = dict.fromkeys(
            item.output_name for item in node.items
        )
        self.schema = list(names)
        self.detail = ", ".join(str(g) for g in node.group_by)

    def batches(self) -> Iterator[ColumnBatch]:
        # Aggregation is computed over the whole input at once: bincount's
        # sequential accumulation then matches the row engine's row order
        # regardless of how the child chose to batch.
        collected = list(self.child.batches())
        began = perf_counter()
        table = concat_batches(self.child.schema, collected)
        n = table.length
        grouped = bool(self.group_kernels)
        representatives: list[Row]
        if grouped:
            if n == 0:
                gids = np.empty(0, np.int64)
                representatives = []
            else:
                key_vectors = [k.eval(table) for k in self.group_kernels]
                try:
                    codes = [_equality_codes(v) for v in key_vectors]
                    gids, rep_idx = _first_seen_groups(_combine_codes(codes))
                except _PythonFallback:
                    gids, rep_idx = _py_groups(key_vectors, n)
                representatives = gather(table, rep_idx).to_rows()
        else:
            gids = np.zeros(n, np.int64)
            if n:
                representatives = gather(table, np.array([0], np.int64)).to_rows()
            else:
                representatives = [{}]
        n_groups = len(representatives)
        per_call = [c.compute(table, gids, n_groups) for c in self.calls]
        rows: list[Row] = []
        node = self.node
        for gid, representative in enumerate(representatives):
            results = {
                key: column[gid]
                for key, column in zip(self.agg_keys, per_call)
            }
            if node.having is not None and not _eval_with_aggregates(
                node.having, representative, results
            ):
                continue
            out_row: Row = {}
            for item in node.items:
                out_row[item.output_name] = _eval_with_aggregates(
                    item.expr, representative, results
                )
            rows.append(out_row)
        self.seconds += perf_counter() - began
        size = self.batch_size if self.batch_size is not None else max(len(rows), 1)
        for start in range(0, len(rows), size):
            chunk = rows[start:start + size]
            yield self._emit(ColumnBatch.from_rows(chunk, self.schema))


# ----------------------------------------------------------------------
# Join
# ----------------------------------------------------------------------

def _is_pure_equi(condition: Expr) -> bool:
    """True when the condition is exactly a conjunction of col = col."""
    if isinstance(condition, BinaryOp):
        if condition.op == "and":
            return _is_pure_equi(condition.left) and _is_pure_equi(condition.right)
        if condition.op == "=":
            return isinstance(condition.left, ColumnRef) and isinstance(
                condition.right, ColumnRef
            )
    return False


def _pair_codes(
    left: ColumnVector, right: ColumnVector
) -> Optional[tuple[np.ndarray, np.ndarray]]:
    """Pool one key pair into a shared integer code space.

    Equal code <=> Python-equal value (so int 1 matches float 1.0, exactly
    like the row engine's hash buckets).  Returns ``None`` when no value
    can possibly match (string vs. numeric); raises
    :class:`_PythonFallback` for shapes needing exact Python hashing
    (object columns, NaN keys, ints beyond float64's exact range).
    """
    kl, kr = left.kind, right.kind
    if kl == "object" or kr == "object":
        raise _PythonFallback
    if kl == "str" and kr == "str":
        if left.dictionary is right.dictionary:
            return left.data.astype(np.int64), right.data.astype(np.int64)
        merged = np.unique(np.concatenate([left.dictionary, right.dictionary]))
        lc = merged.searchsorted(left.dictionary).astype(np.int64)[left.data]
        rc = merged.searchsorted(right.dictionary).astype(np.int64)[right.data]
        return lc, rc
    if kl == "str" or kr == "str":
        return None
    ld, rd = left.data, right.data
    if "float" in (kl, kr):
        for vec, side in ((left, ld), (right, rd)):
            valid = side[~vec.null_mask()]
            if not valid.size:
                continue
            if vec.kind == "float":
                if bool(np.isnan(valid).any()):
                    raise _PythonFallback
            elif int(np.abs(valid).max()) > _FLOAT_EXACT_INT:
                raise _PythonFallback
        ld = ld.astype(np.float64)
        rd = rd.astype(np.float64)
    elif kl == "bool":
        ld = ld.astype(np.int64)
    elif kr == "bool":
        rd = rd.astype(np.int64)
    pooled = np.concatenate([ld, rd])
    _, inv = np.unique(pooled, return_inverse=True)
    inv = inv.astype(np.int64)
    return inv[: len(ld)], inv[len(ld):]


class _JoinOp(_Op):
    kind = "join"

    def __init__(
        self, left: _Op, right: _Op, node: LogicalJoin, batch_size: Optional[int]
    ) -> None:
        super().__init__()
        if node.kind not in ("inner", "left"):
            raise UnsupportedFeature(f"unsupported join kind {node.kind!r}")
        keys = _extract_equi_keys(node.condition)
        if not keys:
            raise UnsupportedFeature("join without equi-key condition")
        self.left = left
        self.right = right
        self.join_kind = node.kind
        self.batch_size = batch_size
        self.keys = keys
        self.detail = str(node.condition)
        left_present = set(left.schema)
        self.right_names = set(right.schema)
        self.schema = left.schema + [
            n for n in right.schema if n not in left_present
        ]
        self.condition_kernel = compile_kernel(node.condition, self.schema)
        # A condition that is exactly its equi-pairs needs no residual
        # pass: code-matched candidates satisfy it by construction (null
        # keys are excluded, which the equality conjunct would reject too).
        self.pure_equi = _is_pure_equi(node.condition)

    def children(self) -> list[_Op]:
        return [self.left, self.right]

    @staticmethod
    def _key_column(ref: ColumnRef, batch: ColumnBatch) -> ColumnVector:
        key = f"{ref.qualifier}.{ref.name}" if ref.qualifier else ref.name
        column = batch.columns.get(key)
        if column is None:
            column = batch.columns.get(ref.name)
        if column is None:
            return ColumnVector.all_null(batch.length)
        return column

    def batches(self) -> Iterator[ColumnBatch]:
        left = concat_batches(self.left.schema, list(self.left.batches()))
        right = concat_batches(self.right.schema, list(self.right.batches()))
        began = perf_counter()
        # Orient each key pair against the first left row's values, exactly
        # like the row engine's probe of ``left_rows[0]``.
        oriented = []
        for a, b in self.keys:
            column = self._key_column(a, left)
            first = column.value_at(0) if left.length else None
            oriented.append((a, b) if first is not None else (b, a))
        left_vecs = [self._key_column(l, left) for l, _ in oriented]
        right_vecs = [self._key_column(r, right) for _, r in oriented]
        try:
            cand_left, cand_right = self._match_vectorized(
                left, right, left_vecs, right_vecs
            )
        except _PythonFallback:
            cand_left, cand_right = self._match_python(left_vecs, right_vecs)
        # Residual check over candidate pairs, mirroring the row engine's
        # per-candidate eval_expr (skipped for pure equi-conditions).
        if cand_left.size and not self.pure_equi:
            needed = self.condition_kernel.col_keys
            columns = {}
            for name in needed:
                if name in self.right_names:
                    columns[name] = right.columns[name].take(cand_right)
                else:
                    columns[name] = left.columns[name].take(cand_left)
            candidates = ColumnBatch(needed, columns, cand_left.size)
            keep = self.condition_kernel.truth(candidates)
            cand_left = cand_left[keep]
            cand_right = cand_right[keep]
        if self.join_kind == "left":
            matched = np.zeros(left.length, np.bool_)
            matched[cand_left] = True
            unmatched = np.flatnonzero(~matched)
            if unmatched.size:
                all_left = np.concatenate([cand_left, unmatched])
                all_right = np.concatenate(
                    [cand_right, np.full(unmatched.size, -1, np.int64)]
                )
                order = np.argsort(all_left, kind="stable")
                cand_left = all_left[order]
                cand_right = all_right[order]
        self.seconds += perf_counter() - began
        total = int(cand_left.size)
        size = self.batch_size if self.batch_size is not None else max(total, 1)
        for start in range(0, total, size):
            began = perf_counter()
            li = cand_left[start:start + size]
            ri = cand_right[start:start + size]
            taken: dict[tuple[str, int], ColumnVector] = {}
            columns = {}
            for name in self.schema:
                if name in self.right_names:
                    source = right.columns[name]
                    cache_key = ("r", id(source))
                    picked = taken.get(cache_key)
                    if picked is None:
                        picked = taken[cache_key] = _take_padded(source, ri)
                else:
                    source = left.columns[name]
                    cache_key = ("l", id(source))
                    picked = taken.get(cache_key)
                    if picked is None:
                        picked = taken[cache_key] = source.take(li)
                columns[name] = picked
            batch = ColumnBatch(self.schema, columns, len(li))
            self.seconds += perf_counter() - began
            yield self._emit(batch)

    def _match_vectorized(
        self,
        left: ColumnBatch,
        right: ColumnBatch,
        left_vecs: list[ColumnVector],
        right_vecs: list[ColumnVector],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Candidate pairs via sorted build side + searchsorted probe."""
        nl, nr = left.length, right.length
        left_valid = np.ones(nl, np.bool_)
        right_valid = np.ones(nr, np.bool_)
        left_parts: list[np.ndarray] = []
        right_parts: list[np.ndarray] = []
        impossible = False
        for lv, rv in zip(left_vecs, right_vecs):
            pair = _pair_codes(lv, rv)
            if pair is None:
                impossible = True
                break
            left_parts.append(pair[0])
            right_parts.append(pair[1])
            left_valid &= ~lv.null_mask()
            right_valid &= ~rv.null_mask()
        empty = np.empty(0, np.int64)
        if impossible:
            return empty, empty
        left_codes = _join_fold(left_parts, right_parts, take_left=True)
        right_codes = _join_fold(left_parts, right_parts, take_left=False)
        build_idx = np.flatnonzero(right_valid)
        build_codes = right_codes[build_idx]
        perm = np.argsort(build_codes, kind="stable")
        sorted_codes = build_codes[perm]
        # Stable sort => equal codes keep ascending original right order,
        # reproducing the row engine's bucket insertion order.
        build_order = build_idx[perm]
        lo = np.searchsorted(sorted_codes, left_codes, "left")
        hi = np.searchsorted(sorted_codes, left_codes, "right")
        counts = np.where(left_valid, hi - lo, 0)
        total = int(counts.sum())
        if not total:
            return empty, empty
        cand_left = np.repeat(np.arange(nl, dtype=np.int64), counts)
        starts = np.cumsum(counts) - counts
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        cand_right = build_order[np.repeat(lo, counts) + within]
        return cand_left, cand_right

    def _match_python(
        self,
        left_vecs: list[ColumnVector],
        right_vecs: list[ColumnVector],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact Python-equality hash join (row-engine bucket semantics)."""
        left_lists = [v.to_pylist() for v in left_vecs]
        right_lists = [v.to_pylist() for v in right_vecs]
        nl = len(left_lists[0]) if left_lists else 0
        nr = len(right_lists[0]) if right_lists else 0
        buckets: dict[tuple, list[int]] = {}
        for j in range(nr):
            key = tuple(_hashable(lst[j]) for lst in right_lists)
            if any(v is None for v in key):
                continue
            buckets.setdefault(key, []).append(j)
        cand_left: list[int] = []
        cand_right: list[int] = []
        no_match: list[int] = []
        for i in range(nl):
            key = tuple(_hashable(lst[i]) for lst in left_lists)
            if any(v is None for v in key):
                continue
            for j in buckets.get(key, no_match):
                cand_left.append(i)
                cand_right.append(j)
        return (
            np.array(cand_left, np.int64),
            np.array(cand_right, np.int64),
        )


def _join_fold(
    left_parts: list[np.ndarray], right_parts: list[np.ndarray], take_left: bool
) -> np.ndarray:
    """Fold multi-key pair codes into one joint code per lane.

    Left and right must fold through the *same* compression, so the fold
    runs over the concatenation and this helper slices out one side.
    """
    if len(left_parts) == 1:
        return left_parts[0] if take_left else right_parts[0]
    nl = len(left_parts[0])
    pooled = [np.concatenate([l, r]) for l, r in zip(left_parts, right_parts)]
    codes = _combine_codes(pooled)
    return codes[:nl] if take_left else codes[nl:]


def _take_padded(vec: ColumnVector, indexes: np.ndarray) -> ColumnVector:
    """Gather with ``-1`` meaning NULL (LEFT JOIN fill)."""
    negative = indexes < 0
    if not negative.any():
        return vec.take(indexes)
    if len(vec) == 0:
        return ColumnVector.all_null(len(indexes))
    taken = vec.take(np.where(negative, 0, indexes))
    mask = negative | taken.null_mask()
    if vec.kind == "object":
        data = taken.data.copy()
        data[negative] = None
        return ColumnVector("object", data, mask)
    return ColumnVector(vec.kind, taken.data, mask, taken.dictionary)


# ----------------------------------------------------------------------
# Sort / limit
# ----------------------------------------------------------------------

class _SortOp(_UnaryOpBase):
    kind = "sort"

    def __init__(
        self, child: _Op, node: LogicalSort, batch_size: Optional[int]
    ) -> None:
        super().__init__(child)
        self.schema = list(child.schema)
        self.order = [
            (compile_kernel(o.expr, child.schema), o.descending)
            for o in node.order_by
        ]
        self.detail = ", ".join(str(o.expr) for o in node.order_by)
        self.batch_size = batch_size

    def batches(self) -> Iterator[ColumnBatch]:
        table = concat_batches(self.schema, list(self.child.batches()))
        began = perf_counter()
        n = table.length
        indexes = np.arange(n, dtype=np.int64)
        # Successive stable sorts, least-significant key first — identical
        # to the row engine's reversed() loop over order_by.
        for kernel, descending in reversed(self.order):
            if n == 0:
                break
            indexes = _sort_pass(indexes, kernel.eval(table), descending)
        self.seconds += perf_counter() - began
        size = self.batch_size if self.batch_size is not None else max(n, 1)
        for start in range(0, n, size):
            began = perf_counter()
            batch = gather(table, indexes[start:start + size])
            self.seconds += perf_counter() - began
            yield self._emit(batch)


def _sort_pass(
    indexes: np.ndarray, vec: ColumnVector, descending: bool
) -> np.ndarray:
    """One stable sort pass by ``vec``, refining the current order.

    Equivalent to the row engine's stable sort by ``_sort_key`` — NULLs
    first ascending (last descending), then by value — realised as a value
    pass (NULL lanes pinned to one constant so they tie) followed by a
    null-flag pass.  Object columns and NaN keys replay ``_sort_key``
    itself: Python sorts with NaN are order-dependent, so only the exact
    same comparison sequence reproduces them.
    """
    kind = vec.kind
    if kind == "object" or (
        kind == "float" and bool(np.isnan(vec.data).any())
    ):
        keys = [_sort_key(v) for v in vec.to_pylist()]
        current = indexes.tolist()
        current.sort(key=keys.__getitem__, reverse=descending)
        return np.array(current, np.int64)
    data = vec.data
    mask = vec.mask
    if mask is not None:
        # Pin NULL lanes to a single constant so the value pass leaves
        # their relative order to the null-flag pass alone.  (Computed
        # vectors can hold arbitrary garbage under the mask.)
        data = np.where(mask, data.dtype.type(0), data)
    permuted = data[indexes]
    if descending:
        sub = _stable_desc_argsort(permuted)
    else:
        sub = np.argsort(permuted, kind="stable")
    indexes = indexes[sub]
    if mask is not None and mask.any():
        flags = (~mask)[indexes]  # False (NULL) sorts first ascending
        if descending:
            sub = _stable_desc_argsort(flags)
        else:
            sub = np.argsort(flags, kind="stable")
        indexes = indexes[sub]
    return indexes


class _LimitOp(_UnaryOpBase):
    kind = "limit"

    def __init__(self, child: _Op, count: int) -> None:
        super().__init__(child)
        self.count = count
        self.schema = list(child.schema)
        self.detail = str(count)

    def batches(self) -> Iterator[ColumnBatch]:
        remaining = self.count
        if remaining <= 0:
            return
        for batch in self.child.batches():
            if batch.length <= remaining:
                remaining -= batch.length
                yield self._emit(batch)
                if remaining == 0:
                    return
            else:
                yield self._emit(slice_batch(batch, remaining))
                return


# ----------------------------------------------------------------------
# Plan compilation and execution
# ----------------------------------------------------------------------

def compile_plan(
    node: LogicalNode,
    database: Database,
    catalog: Optional[Catalog] = None,
    batch_size: Optional[int] = None,
) -> _Op:
    """Lower a logical plan to a tree of columnar operators.

    ``batch_size=None`` (the default) lets each scan pick its own batch —
    the whole table, capped at ``2**20`` lanes — which is the fastest
    shape for array kernels; pass an explicit size to bound peak memory.

    Raises :class:`UnsupportedFeature` for shapes only the row engine
    handles; any other :class:`ExecutionError` is a genuine query error.
    """
    if isinstance(node, LogicalScan):
        return _ScanOp(node, database, catalog, batch_size)
    if isinstance(node, LogicalSubquery):
        child = compile_plan(node.child, database, catalog, batch_size)
        return _AliasOp(child, node.binding)
    if isinstance(node, LogicalFilter):
        child = compile_plan(node.child, database, catalog, batch_size)
        return _FilterOp(child, node.predicate)
    if isinstance(node, LogicalJoin):
        left = compile_plan(node.left, database, catalog, batch_size)
        right = compile_plan(node.right, database, catalog, batch_size)
        return _JoinOp(left, right, node, batch_size)
    if isinstance(node, LogicalAggregate):
        child = compile_plan(node.child, database, catalog, batch_size)
        return _AggregateOp(child, node, batch_size)
    if isinstance(node, LogicalProject):
        child = compile_plan(node.child, database, catalog, batch_size)
        return _ProjectOp(child, node)
    if isinstance(node, LogicalSort):
        child = compile_plan(node.child, database, catalog, batch_size)
        return _SortOp(child, node, batch_size)
    if isinstance(node, LogicalLimit):
        child = compile_plan(node.child, database, catalog, batch_size)
        return _LimitOp(child, node.count)
    raise PlanError(f"cannot execute {node!r}")


def walk_ops(root: _Op) -> list[_Op]:
    """All operators under ``root`` in pre-order."""
    out = [root]
    for child in root.children():
        out.extend(walk_ops(child))
    return out


class ColumnarExecutor:
    """Executes logical plans batch-at-a-time over an in-memory database."""

    def __init__(
        self,
        database: Database,
        catalog: Optional[Catalog] = None,
        batch_size: Optional[int] = None,
        tracer=None,
        metrics=None,
    ) -> None:
        self.database = database
        self.catalog = catalog
        self.batch_size = batch_size
        self.tracer = tracer
        self.metrics = metrics

    def compile(self, plan: LogicalNode) -> _Op:
        """Lower ``plan``; raises :class:`UnsupportedFeature` on fallback."""
        return compile_plan(plan, self.database, self.catalog, self.batch_size)

    def run(self, root: _Op) -> list[Row]:
        """Drive a compiled operator tree and materialise the result rows."""
        started = perf_counter()
        rows: list[Row] = []
        for batch in root.batches():
            rows.extend(batch.to_rows())
        elapsed = perf_counter() - started
        self._report(root, elapsed, len(rows))
        return rows

    def execute(self, plan: LogicalNode) -> list[Row]:
        """Compile and run ``plan`` in one step."""
        return self.run(self.compile(plan))

    def _report(self, root: _Op, elapsed: float, result_rows: int) -> None:
        ops = walk_ops(root)
        if self.metrics is not None:
            self.metrics.counter("sql_columnar_queries").inc()
            self.metrics.histogram("sql_columnar_query_s").observe(elapsed)
            for op in ops:
                prefix = f"sql_columnar_{op.kind}"
                self.metrics.counter(f"{prefix}_rows").inc(op.rows_out)
                self.metrics.counter(f"{prefix}_batches").inc(op.batches_out)
        if self.tracer is not None and self.tracer.enabled:
            for index, op in enumerate(ops):
                self.tracer.span(
                    "sql", f"columnar.{op.kind}", 0.0, op.seconds,
                    scope=str(index), **op.stats(),
                )
            self.tracer.instant(
                "sql", "columnar.query", 0.0,
                rows=result_rows, elapsed_s=round(elapsed, 6),
            )
