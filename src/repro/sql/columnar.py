"""Vectorized columnar execution engine.

Operators exchange :class:`ColumnBatch` objects (parallel Python lists, one
per column, fixed batch size) instead of per-row dictionaries.  Scalar
expressions are compiled **once per query** into per-batch kernels — a
generated list comprehension over only the referenced columns — so the
per-row interpreter overhead of :mod:`repro.sql.executor` (AST walk, dict
lookups, operator-table construction) is paid once per batch instead of
once per value.

Semantics mirror the row executor exactly: NULL propagation through
arithmetic and comparisons, ``and``/``or`` via Python truthiness with
short-circuit, LIKE via the shared :func:`~repro.sql.executor.like_to_glob`
translation, first-seen group ordering, probe-order hash joins, and stable
successive sorts.  Differential tests assert identical output on every
TPC-H query and the conformance corpus.

Plans the engine cannot run raise :class:`UnsupportedFeature` at compile
time; the dispatcher (:mod:`repro.sql.dispatch`) catches it and falls back
to the row executor.
"""

from __future__ import annotations

import fnmatch
import re
from time import perf_counter
from typing import Callable, Iterator, Optional, Sequence

from .ast import (
    AGGREGATE_FUNCTIONS,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    Literal,
    Star,
    UnaryOp,
)
from .catalog import Catalog
from .executor import (
    _SCALAR_FUNCTIONS,
    Database,
    ExecutionError,
    Row,
    _collect_aggregates,
    _eval_with_aggregates,
    _extract_equi_keys,
    _hashable,
    _sort_key,
    like_to_glob,
    sql_like,
)
from .logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalSubquery,
    PlanError,
)

#: Rows per batch; large enough to amortise per-batch kernel dispatch,
#: small enough to keep intermediate lists cache-friendly.
DEFAULT_BATCH_SIZE = 4096


class UnsupportedFeature(ExecutionError):
    """Plan shape the columnar engine cannot run (dispatch falls back)."""


# ----------------------------------------------------------------------
# Column batches
# ----------------------------------------------------------------------

class ColumnBatch:
    """A batch of rows stored as parallel columns.

    ``columns`` maps every visible column name — bare (``l_suppkey``) and
    binding-qualified (``l.l_suppkey``) — to a list of ``length`` values.
    Qualified aliases share the *same list object* as their bare column,
    so qualification is free per batch instead of per row.
    """

    __slots__ = ("names", "columns", "length")

    def __init__(
        self, names: Sequence[str], columns: dict[str, list], length: int
    ) -> None:
        self.names = list(names)
        self.columns = columns
        self.length = length

    @classmethod
    def from_rows(cls, rows: Sequence[Row], names: Sequence[str]) -> "ColumnBatch":
        """Transpose homogeneous row dicts into a batch."""
        columns: dict[str, list] = {n: [row[n] for row in rows] for n in names}
        return cls(list(names), columns, len(rows))

    def to_rows(self) -> list[Row]:
        """Transpose the batch back into row dicts (result materialisation)."""
        names = self.names
        if not names:
            return [{} for _ in range(self.length)]
        cols = [self.columns[n] for n in names]
        return [dict(zip(names, values)) for values in zip(*cols)]


def _gather(batch: ColumnBatch, indexes: list[int]) -> ColumnBatch:
    """Select ``indexes`` from every column, preserving alias sharing."""
    taken: dict[int, list] = {}
    columns: dict[str, list] = {}
    for name in batch.names:
        source = batch.columns[name]
        picked = taken.get(id(source))
        if picked is None:
            picked = taken[id(source)] = [source[i] for i in indexes]
        columns[name] = picked
    return ColumnBatch(batch.names, columns, len(indexes))


def _slice_batch(batch: ColumnBatch, count: int) -> ColumnBatch:
    """The first ``count`` rows of a batch, preserving alias sharing."""
    taken: dict[int, list] = {}
    columns: dict[str, list] = {}
    for name in batch.names:
        source = batch.columns[name]
        picked = taken.get(id(source))
        if picked is None:
            picked = taken[id(source)] = source[:count]
        columns[name] = picked
    return ColumnBatch(batch.names, columns, count)


def _concat(schema: list[str], batches: list[ColumnBatch]) -> ColumnBatch:
    """Concatenate batches into one, preserving alias sharing."""
    if not batches:
        return ColumnBatch(schema, {n: [] for n in schema}, 0)
    if len(batches) == 1:
        return batches[0]
    leaders: dict[int, str] = {}
    columns: dict[str, list] = {}
    for name in schema:
        lead = leaders.get(id(batches[0].columns[name]))
        if lead is not None:
            columns[name] = columns[lead]
            continue
        leaders[id(batches[0].columns[name])] = name
        merged: list = []
        for batch in batches:
            merged.extend(batch.columns[name])
        columns[name] = merged
    return ColumnBatch(schema, columns, sum(b.length for b in batches))


# ----------------------------------------------------------------------
# Expression compilation: AST -> per-batch kernel
# ----------------------------------------------------------------------

class Kernel:
    """A compiled expression: maps a batch to a list of values."""

    __slots__ = ("fn", "col_keys", "source")

    def __init__(self, fn: Callable[..., list], col_keys: list[str], source: str):
        self.fn = fn
        self.col_keys = col_keys
        self.source = source

    def __call__(self, batch: ColumnBatch) -> list:
        if not self.col_keys:
            return self.fn(batch.length)
        columns = batch.columns
        return self.fn(*[columns[k] for k in self.col_keys])


_BINARY_PYOPS = {
    "+": "+", "-": "-", "*": "*", "/": "/", "%": "%",
    "=": "==", "<>": "!=", "<": "<", ">": ">", "<=": "<=", ">=": ">=",
}


class _KernelCompiler:
    """Lowers one expression tree to a Python comprehension body."""

    def __init__(self, schema: Sequence[str]) -> None:
        self.schema = set(schema)
        self.cols: dict[str, str] = {}
        self.env: dict[str, object] = {"_sql_like": sql_like}
        self.uid = 0

    def _temp(self) -> str:
        self.uid += 1
        return f"_t{self.uid}"

    def _const(self, value: object) -> str:
        name = f"_k{len(self.env)}"
        self.env[name] = value
        return name

    def _column(self, ref: ColumnRef) -> str:
        key = f"{ref.qualifier}.{ref.name}" if ref.qualifier else ref.name
        if key not in self.schema:
            if ref.name in self.schema:
                key = ref.name
            else:
                raise ExecutionError(f"column {key!r} not found in row")
        var = self.cols.get(key)
        if var is None:
            var = f"_v{len(self.cols)}"
            self.cols[key] = var
        return var

    # ------------------------------------------------------------------
    def emit(self, expr: Expr) -> str:
        if isinstance(expr, Literal):
            value = expr.value
            if value is None or isinstance(value, (bool, int, float, str)):
                return repr(value)
            return self._const(value)
        if isinstance(expr, ColumnRef):
            return self._column(expr)
        if isinstance(expr, Star):
            raise ExecutionError("* is only valid in select lists and count(*)")
        if isinstance(expr, UnaryOp):
            operand = self.emit(expr.operand)
            if expr.op == "-":
                tmp = self._temp()
                return f"(None if ({tmp} := {operand}) is None else - {tmp})"
            if expr.op == "not":
                return f"(not {operand})"
            raise ExecutionError(f"unknown unary operator {expr.op}")
        if isinstance(expr, BinaryOp):
            return self._emit_binary(expr)
        if isinstance(expr, FunctionCall):
            return self._emit_call(expr)
        if isinstance(expr, CaseExpr):
            code = (
                self.emit(expr.default) if expr.default is not None else "None"
            )
            for condition, value in reversed(expr.whens):
                code = f"({self.emit(value)} if {self.emit(condition)} else {code})"
            return code
        if isinstance(expr, InList):
            return self._emit_in_list(expr)
        raise ExecutionError(f"cannot evaluate {expr!r}")

    def _emit_binary(self, expr: BinaryOp) -> str:
        op = expr.op
        if op == "and":
            return f"(bool({self.emit(expr.left)}) and bool({self.emit(expr.right)}))"
        if op == "or":
            return f"(bool({self.emit(expr.left)}) or bool({self.emit(expr.right)}))"
        left = self.emit(expr.left)
        if op == "like":
            if isinstance(expr.right, Literal):
                # Literal pattern: precompile the regex fnmatchcase would build.
                glob = like_to_glob(str(expr.right.value))
                rx = self._const(re.compile(fnmatch.translate(glob)))
                return f"({rx}.match(str({left})) is not None)"
            return f"_sql_like({left}, {self.emit(expr.right)})"
        right = self.emit(expr.right)
        if op == "||":
            return f"(str({left}) + str({right}))"
        pyop = _BINARY_PYOPS.get(op)
        if pyop is None:
            raise ExecutionError(f"unknown operator {op!r}")
        lt, rt = self._temp(), self._temp()
        # `|` (not `or`) so both operands are evaluated, like the row engine.
        return (
            f"(None if (({lt} := {left}) is None) | (({rt} := {right}) is None)"
            f" else ({lt} {pyop} {rt}))"
        )

    def _emit_call(self, expr: FunctionCall) -> str:
        name = expr.name.lower()
        if name in AGGREGATE_FUNCTIONS:
            raise ExecutionError(
                f"aggregate {name}() outside an aggregation context"
            )
        fn = _SCALAR_FUNCTIONS.get(name)
        if fn is None:
            raise ExecutionError(f"unknown function {expr.name!r}")
        fn_var = self._const(fn)
        args = ", ".join(self.emit(a) for a in expr.args)
        return f"{fn_var}({args})"

    def _emit_in_list(self, expr: InList) -> str:
        needle = self.emit(expr.expr)
        if not expr.values:
            return "True" if expr.negated else "False"
        nt = self._temp()
        # Chained `or` keeps the row engine's lazy right-to-left evaluation;
        # `==` (not set membership) so NULL never matches anything.
        parts = [f"(({nt} := {needle}) == {self.emit(expr.values[0])})"]
        parts.extend(f"({nt} == {self.emit(v)})" for v in expr.values[1:])
        matched = "(" + " or ".join(parts) + ")"
        return f"(not {matched})" if expr.negated else matched


def compile_kernel(expr: Expr, schema: Sequence[str]) -> Kernel:
    """Compile ``expr`` into a per-batch kernel over ``schema`` columns."""
    compiler = _KernelCompiler(schema)
    code = compiler.emit(expr)
    col_keys = list(compiler.cols)
    variables = [compiler.cols[k] for k in col_keys]
    if not col_keys:
        source = f"def _kernel(_n):\n    return [{code} for _ in range(_n)]"
    elif len(col_keys) == 1:
        var = variables[0]
        source = (
            f"def _kernel({var}_col):\n"
            f"    return [{code} for {var} in {var}_col]"
        )
    else:
        params = ", ".join(f"{v}_col" for v in variables)
        targets = ", ".join(variables)
        source = (
            f"def _kernel({params}):\n"
            f"    return [{code} for ({targets}) in zip({params})]"
        )
    namespace = dict(compiler.env)
    exec(source, namespace)  # noqa: S102 - generated from a closed AST, no user text
    return Kernel(namespace["_kernel"], col_keys, source)


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------

class _Op:
    """Base batch operator: produces batches, tracks throughput stats."""

    kind = "op"

    def __init__(self) -> None:
        self.schema: list[str] = []
        self.rows_out = 0
        self.batches_out = 0
        self.seconds = 0.0
        self.detail = ""

    def children(self) -> list["_Op"]:
        return []

    def batches(self) -> Iterator[ColumnBatch]:
        raise NotImplementedError

    def _emit(self, batch: ColumnBatch) -> ColumnBatch:
        self.rows_out += batch.length
        self.batches_out += 1
        return batch

    def stats(self) -> dict[str, object]:
        """Per-operator throughput summary for metrics/tracing."""
        rate = self.rows_out / self.seconds if self.seconds > 0 else 0.0
        return {
            "rows": self.rows_out,
            "batches": self.batches_out,
            "seconds": round(self.seconds, 6),
            "rows_per_s": round(rate, 1),
            "detail": self.detail,
        }


class _UnaryOpBase(_Op):
    def __init__(self, child: _Op) -> None:
        super().__init__()
        self.child = child

    def children(self) -> list[_Op]:
        return [self.child]


class _ScanOp(_Op):
    kind = "scan"

    def __init__(
        self,
        node: LogicalScan,
        database: Database,
        catalog: Optional[Catalog],
        batch_size: int,
    ) -> None:
        super().__init__()
        rows = database.get(node.table)
        if rows is None:
            raise ExecutionError(f"table {node.table!r} not loaded")
        self.rows = rows
        self.binding = node.binding
        self.batch_size = batch_size
        self.detail = node.table
        if rows:
            base = list(rows[0].keys())
        elif catalog is not None:
            try:
                base = catalog.resolve_table(node.table).column_names()
            except KeyError:
                raise UnsupportedFeature(
                    f"empty table {node.table!r} has no static schema"
                ) from None
        else:
            raise UnsupportedFeature(
                f"empty table {node.table!r} has no static schema"
            )
        self.base_names = base
        aliases = []
        if self.binding:
            aliases = [
                f"{self.binding}.{n}" for n in base
                if "." not in n and f"{self.binding}.{n}" not in base
            ]
        self.schema = base + aliases

    def batches(self) -> Iterator[ColumnBatch]:
        rows, size, binding = self.rows, self.batch_size, self.binding
        for start in range(0, len(rows), size):
            began = perf_counter()
            chunk = rows[start:start + size]
            columns: dict[str, list] = {
                n: [row[n] for row in chunk] for n in self.base_names
            }
            if binding:
                for n in self.base_names:
                    if "." not in n:
                        columns[f"{binding}.{n}"] = columns[n]
            batch = ColumnBatch(self.schema, columns, len(chunk))
            self.seconds += perf_counter() - began
            yield self._emit(batch)


class _AliasOp(_UnaryOpBase):
    """FROM-clause subquery: re-qualify child columns under a binding."""

    kind = "subquery"

    def __init__(self, child: _Op, binding: Optional[str]) -> None:
        super().__init__(child)
        self.binding = binding
        self.detail = binding or ""
        if binding:
            self.alias_names = [
                n for n in child.schema if "." not in n
            ]
            extra = [
                f"{binding}.{n}" for n in self.alias_names
                if f"{binding}.{n}" not in child.schema
            ]
            self.schema = child.schema + extra
        else:
            self.alias_names = []
            self.schema = list(child.schema)

    def batches(self) -> Iterator[ColumnBatch]:
        binding = self.binding
        for batch in self.child.batches():
            if not binding:
                yield self._emit(batch)
                continue
            began = perf_counter()
            columns = dict(batch.columns)
            for n in self.alias_names:
                columns[f"{binding}.{n}"] = columns[n]
            out = ColumnBatch(self.schema, columns, batch.length)
            self.seconds += perf_counter() - began
            yield self._emit(out)


class _FilterOp(_UnaryOpBase):
    kind = "filter"

    def __init__(self, child: _Op, predicate: Expr) -> None:
        super().__init__(child)
        self.kernel = compile_kernel(predicate, child.schema)
        self.schema = list(child.schema)
        self.detail = str(predicate)

    def batches(self) -> Iterator[ColumnBatch]:
        for batch in self.child.batches():
            began = perf_counter()
            mask = self.kernel(batch)
            selection = [i for i, keep in enumerate(mask) if keep]
            if len(selection) == batch.length:
                out: Optional[ColumnBatch] = batch
            elif selection:
                out = _gather(batch, selection)
            else:
                out = None
            self.seconds += perf_counter() - began
            if out is not None:
                yield self._emit(out)


class _ProjectOp(_UnaryOpBase):
    kind = "project"

    def __init__(self, child: _Op, node: LogicalProject) -> None:
        super().__init__(child)
        self.items = node.items
        self.distinct = node.distinct
        self.passthrough = (
            len(node.items) == 1 and isinstance(node.items[0].expr, Star)
        )
        self.kernels: list[tuple[Optional[str], Optional[Kernel]]] = []
        names: dict[str, None] = {}
        if self.passthrough:
            names = dict.fromkeys(child.schema)
        else:
            for item in node.items:
                if isinstance(item.expr, Star):
                    self.kernels.append((None, None))
                    names.update(dict.fromkeys(child.schema))
                else:
                    name = item.output_name
                    self.kernels.append(
                        (name, compile_kernel(item.expr, child.schema))
                    )
                    names[name] = None
        self.schema = list(names)
        self.seen: Optional[set] = set() if node.distinct else None

    def batches(self) -> Iterator[ColumnBatch]:
        for batch in self.child.batches():
            began = perf_counter()
            if self.passthrough:
                out = batch
            else:
                columns: dict[str, list] = {}
                for name, kernel in self.kernels:
                    if kernel is None:
                        for n in self.child.schema:
                            columns[n] = batch.columns[n]
                    else:
                        columns[name] = kernel(batch)  # type: ignore[index]
                out = ColumnBatch(self.schema, columns, batch.length)
            if self.seen is not None:
                out = self._dedup(out)
            self.seconds += perf_counter() - began
            if out is not None and out.length:
                yield self._emit(out)

    def _dedup(self, batch: ColumnBatch) -> Optional[ColumnBatch]:
        names = batch.names
        cols = [batch.columns[n] for n in names]
        seen = self.seen
        assert seen is not None
        keep: list[int] = []
        for i, values in enumerate(zip(*cols)):
            key = tuple(sorted((n, _hashable(v)) for n, v in zip(names, values)))
            if key not in seen:
                seen.add(key)
                keep.append(i)
        if len(keep) == batch.length:
            return batch
        if not keep:
            return None
        return _gather(batch, keep)


class _AggState:
    """Array-backed accumulator for one aggregate call across all groups."""

    __slots__ = ("name", "star", "kernel", "counts", "totals", "mins", "maxs", "seen")

    def __init__(self, call: FunctionCall, schema: Sequence[str]) -> None:
        self.name = call.name.lower()
        self.star = bool(call.args) and isinstance(call.args[0], Star)
        if self.star and self.name != "count":
            # The row engine would raise per row; surface the same error.
            raise ExecutionError("* is only valid in select lists and count(*)")
        if not call.args:
            raise ExecutionError(f"{self.name}() needs an argument")
        self.kernel = (
            None if self.star else compile_kernel(call.args[0], schema)
        )
        self.counts: list[int] = []
        self.totals: list[float] = []
        self.mins: list[object] = []
        self.maxs: list[object] = []
        self.seen: Optional[list[set]] = [] if call.distinct else None

    def grow(self) -> None:
        self.counts.append(0)
        self.totals.append(0.0)
        self.mins.append(None)
        self.maxs.append(None)
        if self.seen is not None:
            self.seen.append(set())

    def update(self, group_ids: list[int], batch: ColumnBatch) -> None:
        if self.star:
            counts = self.counts
            for g in group_ids:
                counts[g] += 1
            return
        values = self.kernel(batch)  # type: ignore[misc]
        if self.seen is not None:
            for g, v in zip(group_ids, values):
                if v is None:
                    continue
                bucket = self.seen[g]
                if v in bucket:
                    continue
                bucket.add(v)
                self._accumulate(g, v)
            return
        name = self.name
        if name in ("sum", "avg"):
            counts, totals = self.counts, self.totals
            for g, v in zip(group_ids, values):
                if v is not None:
                    counts[g] += 1
                    if isinstance(v, (int, float)):
                        totals[g] += v
        elif name == "count":
            counts = self.counts
            for g, v in zip(group_ids, values):
                if v is not None:
                    counts[g] += 1
        elif name == "min":
            mins = self.mins
            for g, v in zip(group_ids, values):
                if v is not None:
                    m = mins[g]
                    if m is None or v < m:  # type: ignore[operator]
                        mins[g] = v
        else:
            maxs = self.maxs
            for g, v in zip(group_ids, values):
                if v is not None:
                    m = maxs[g]
                    if m is None or v > m:  # type: ignore[operator]
                        maxs[g] = v

    def _accumulate(self, g: int, value: object) -> None:
        self.counts[g] += 1
        if isinstance(value, (int, float)):
            self.totals[g] += value
        if self.mins[g] is None or value < self.mins[g]:  # type: ignore[operator]
            self.mins[g] = value
        if self.maxs[g] is None or value > self.maxs[g]:  # type: ignore[operator]
            self.maxs[g] = value

    def result(self, g: int) -> object:
        name = self.name
        if name == "count":
            return self.counts[g]
        if name == "sum":
            return self.totals[g] if self.counts[g] else None
        if name == "avg":
            return self.totals[g] / self.counts[g] if self.counts[g] else None
        if name == "min":
            return self.mins[g]
        if name == "max":
            return self.maxs[g]
        raise ExecutionError(f"unknown aggregate {name!r}")


class _AggregateOp(_UnaryOpBase):
    kind = "aggregate"

    def __init__(self, child: _Op, node: LogicalAggregate, batch_size: int) -> None:
        super().__init__(child)
        self.node = node
        self.batch_size = batch_size
        calls: list[FunctionCall] = []
        for item in node.items:
            _collect_aggregates(item.expr, calls)
        if node.having is not None:
            _collect_aggregates(node.having, calls)
        unique = {str(c): c for c in calls}
        self.agg_keys = list(unique)
        self.states = [_AggState(c, child.schema) for c in unique.values()]
        self.group_kernels = [
            compile_kernel(g, child.schema) for g in node.group_by
        ]
        names: dict[str, None] = dict.fromkeys(
            item.output_name for item in node.items
        )
        self.schema = list(names)
        self.detail = ", ".join(str(g) for g in node.group_by)

    def batches(self) -> Iterator[ColumnBatch]:
        group_ids: dict[tuple, int] = {}
        representatives: list[Row] = []
        states = self.states
        grouped = bool(self.group_kernels)
        for batch in self.child.batches():
            began = perf_counter()
            n = batch.length
            if grouped:
                key_vectors = [k(batch) for k in self.group_kernels]
                if len(key_vectors) == 1:
                    keys = [(_hashable(v),) for v in key_vectors[0]]
                else:
                    keys = [
                        tuple(_hashable(v) for v in values)
                        for values in zip(*key_vectors)
                    ]
                ids: list[int] = []
                append = ids.append
                for i, key in enumerate(keys):
                    gid = group_ids.get(key)
                    if gid is None:
                        gid = len(representatives)
                        group_ids[key] = gid
                        representatives.append(self._representative(batch, i))
                        for state in states:
                            state.grow()
                    append(gid)
            else:
                if not representatives:
                    representatives.append(self._representative(batch, 0))
                    for state in states:
                        state.grow()
                ids = [0] * n
            for state in states:
                state.update(ids, batch)
            self.seconds += perf_counter() - began
        began = perf_counter()
        if not representatives and not grouped:
            representatives.append({})
            for state in states:
                state.grow()
        rows: list[Row] = []
        node = self.node
        for gid, representative in enumerate(representatives):
            results = {
                key: state.result(gid)
                for key, state in zip(self.agg_keys, states)
            }
            if node.having is not None and not _eval_with_aggregates(
                node.having, representative, results
            ):
                continue
            out_row: Row = {}
            for item in node.items:
                out_row[item.output_name] = _eval_with_aggregates(
                    item.expr, representative, results
                )
            rows.append(out_row)
        self.seconds += perf_counter() - began
        for start in range(0, len(rows), self.batch_size):
            chunk = rows[start:start + self.batch_size]
            yield self._emit(ColumnBatch.from_rows(chunk, self.schema))

    def _representative(self, batch: ColumnBatch, i: int) -> Row:
        return {n: batch.columns[n][i] for n in batch.names}


class _JoinOp(_Op):
    kind = "join"

    def __init__(
        self, left: _Op, right: _Op, node: LogicalJoin, batch_size: int
    ) -> None:
        super().__init__()
        if node.kind not in ("inner", "left"):
            raise UnsupportedFeature(f"unsupported join kind {node.kind!r}")
        keys = _extract_equi_keys(node.condition)
        if not keys:
            raise UnsupportedFeature("join without equi-key condition")
        self.left = left
        self.right = right
        self.join_kind = node.kind
        self.batch_size = batch_size
        self.keys = keys
        self.detail = str(node.condition)
        left_present = set(left.schema)
        self.right_names = set(right.schema)
        self.schema = left.schema + [
            n for n in right.schema if n not in left_present
        ]
        self.condition_kernel = compile_kernel(node.condition, self.schema)

    def children(self) -> list[_Op]:
        return [self.left, self.right]

    @staticmethod
    def _key_column(ref: ColumnRef, batch: ColumnBatch) -> list:
        key = f"{ref.qualifier}.{ref.name}" if ref.qualifier else ref.name
        column = batch.columns.get(key)
        if column is None:
            column = batch.columns.get(ref.name)
        if column is None:
            return [None] * batch.length
        return column

    def batches(self) -> Iterator[ColumnBatch]:
        left = _concat(self.left.schema, list(self.left.batches()))
        right = _concat(self.right.schema, list(self.right.batches()))
        began = perf_counter()
        # Orient each key pair against the first left row's values, exactly
        # like the row engine's probe of ``left_rows[0]``.
        oriented = []
        for a, b in self.keys:
            column = self._key_column(a, left)
            first = column[0] if left.length else None
            oriented.append((a, b) if first is not None else (b, a))
        left_keys = [self._key_column(l, left) for l, _ in oriented]
        right_keys = [self._key_column(r, right) for _, r in oriented]
        buckets: dict[tuple, list[int]] = {}
        if len(right_keys) == 1:
            for j, v in enumerate(right_keys[0]):
                buckets.setdefault((v,), []).append(j)
        else:
            for j, values in enumerate(zip(*right_keys)):
                buckets.setdefault(values, []).append(j)
        candidate_left: list[int] = []
        candidate_right: list[int] = []
        empty: list[int] = []
        if len(left_keys) == 1:
            col = left_keys[0]
            for i in range(left.length):
                for j in buckets.get((col[i],), empty):
                    candidate_left.append(i)
                    candidate_right.append(j)
        else:
            for i in range(left.length):
                key = tuple(col[i] for col in left_keys)
                for j in buckets.get(key, empty):
                    candidate_left.append(i)
                    candidate_right.append(j)
        # Residual check: evaluate the full condition over candidate pairs,
        # mirroring the row engine's per-candidate eval_expr.
        mask: list = []
        if candidate_left:
            needed = self.condition_kernel.col_keys
            columns: dict[str, list] = {}
            for name in needed:
                if name in self.right_names:
                    source = right.columns[name]
                    columns[name] = [source[j] for j in candidate_right]
                else:
                    source = left.columns[name]
                    columns[name] = [source[i] for i in candidate_left]
            candidates = ColumnBatch(needed, columns, len(candidate_left))
            mask = self.condition_kernel(candidates)
        out_left: list[int] = []
        out_right: list[int] = []
        position, total = 0, len(candidate_left)
        left_join = self.join_kind == "left"
        for i in range(left.length):
            matched = False
            while position < total and candidate_left[position] == i:
                if mask[position]:
                    out_left.append(i)
                    out_right.append(candidate_right[position])
                    matched = True
                position += 1
            if not matched and left_join:
                out_left.append(i)
                out_right.append(-1)
        self.seconds += perf_counter() - began
        for start in range(0, len(out_left), self.batch_size):
            began = perf_counter()
            li = out_left[start:start + self.batch_size]
            ri = out_right[start:start + self.batch_size]
            taken: dict[tuple[str, int], list] = {}
            columns = {}
            for name in self.schema:
                if name in self.right_names:
                    source = right.columns[name]
                    cache_key = ("r", id(source))
                    picked = taken.get(cache_key)
                    if picked is None:
                        picked = taken[cache_key] = [
                            source[j] if j >= 0 else None for j in ri
                        ]
                else:
                    source = left.columns[name]
                    cache_key = ("l", id(source))
                    picked = taken.get(cache_key)
                    if picked is None:
                        picked = taken[cache_key] = [source[i] for i in li]
                columns[name] = picked
            batch = ColumnBatch(self.schema, columns, len(li))
            self.seconds += perf_counter() - began
            yield self._emit(batch)


class _SortOp(_UnaryOpBase):
    kind = "sort"

    def __init__(self, child: _Op, node: LogicalSort) -> None:
        super().__init__(child)
        self.schema = list(child.schema)
        self.order = [
            (compile_kernel(o.expr, child.schema), o.descending)
            for o in node.order_by
        ]
        self.detail = ", ".join(str(o.expr) for o in node.order_by)
        self.batch_size = DEFAULT_BATCH_SIZE

    def batches(self) -> Iterator[ColumnBatch]:
        table = _concat(self.schema, list(self.child.batches()))
        began = perf_counter()
        indexes = list(range(table.length))
        # Successive stable sorts, least-significant key first — identical
        # to the row engine's reversed() loop over order_by.
        for kernel, descending in reversed(self.order):
            keys = [_sort_key(v) for v in kernel(table)]
            indexes.sort(key=keys.__getitem__, reverse=descending)
        self.seconds += perf_counter() - began
        for start in range(0, len(indexes), self.batch_size):
            began = perf_counter()
            batch = _gather(table, indexes[start:start + self.batch_size])
            self.seconds += perf_counter() - began
            yield self._emit(batch)


class _LimitOp(_UnaryOpBase):
    kind = "limit"

    def __init__(self, child: _Op, count: int) -> None:
        super().__init__(child)
        self.count = count
        self.schema = list(child.schema)
        self.detail = str(count)

    def batches(self) -> Iterator[ColumnBatch]:
        remaining = self.count
        if remaining <= 0:
            return
        for batch in self.child.batches():
            if batch.length <= remaining:
                remaining -= batch.length
                yield self._emit(batch)
                if remaining == 0:
                    return
            else:
                yield self._emit(_slice_batch(batch, remaining))
                return


# ----------------------------------------------------------------------
# Plan compilation and execution
# ----------------------------------------------------------------------

def compile_plan(
    node: LogicalNode,
    database: Database,
    catalog: Optional[Catalog] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> _Op:
    """Lower a logical plan to a tree of columnar operators.

    Raises :class:`UnsupportedFeature` for shapes only the row engine
    handles; any other :class:`ExecutionError` is a genuine query error.
    """
    if isinstance(node, LogicalScan):
        return _ScanOp(node, database, catalog, batch_size)
    if isinstance(node, LogicalSubquery):
        child = compile_plan(node.child, database, catalog, batch_size)
        return _AliasOp(child, node.binding)
    if isinstance(node, LogicalFilter):
        child = compile_plan(node.child, database, catalog, batch_size)
        return _FilterOp(child, node.predicate)
    if isinstance(node, LogicalJoin):
        left = compile_plan(node.left, database, catalog, batch_size)
        right = compile_plan(node.right, database, catalog, batch_size)
        return _JoinOp(left, right, node, batch_size)
    if isinstance(node, LogicalAggregate):
        child = compile_plan(node.child, database, catalog, batch_size)
        return _AggregateOp(child, node, batch_size)
    if isinstance(node, LogicalProject):
        child = compile_plan(node.child, database, catalog, batch_size)
        return _ProjectOp(child, node)
    if isinstance(node, LogicalSort):
        child = compile_plan(node.child, database, catalog, batch_size)
        op = _SortOp(child, node)
        op.batch_size = batch_size
        return op
    if isinstance(node, LogicalLimit):
        child = compile_plan(node.child, database, catalog, batch_size)
        return _LimitOp(child, node.count)
    raise PlanError(f"cannot execute {node!r}")


def walk_ops(root: _Op) -> list[_Op]:
    """All operators under ``root`` in pre-order."""
    out = [root]
    for child in root.children():
        out.extend(walk_ops(child))
    return out


class ColumnarExecutor:
    """Executes logical plans batch-at-a-time over an in-memory database."""

    def __init__(
        self,
        database: Database,
        catalog: Optional[Catalog] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        tracer=None,
        metrics=None,
    ) -> None:
        self.database = database
        self.catalog = catalog
        self.batch_size = batch_size
        self.tracer = tracer
        self.metrics = metrics

    def compile(self, plan: LogicalNode) -> _Op:
        """Lower ``plan``; raises :class:`UnsupportedFeature` on fallback."""
        return compile_plan(plan, self.database, self.catalog, self.batch_size)

    def run(self, root: _Op) -> list[Row]:
        """Drive a compiled operator tree and materialise the result rows."""
        started = perf_counter()
        rows: list[Row] = []
        for batch in root.batches():
            rows.extend(batch.to_rows())
        elapsed = perf_counter() - started
        self._report(root, elapsed, len(rows))
        return rows

    def execute(self, plan: LogicalNode) -> list[Row]:
        """Compile and run ``plan`` in one step."""
        return self.run(self.compile(plan))

    def _report(self, root: _Op, elapsed: float, result_rows: int) -> None:
        ops = walk_ops(root)
        if self.metrics is not None:
            self.metrics.counter("sql_columnar_queries").inc()
            self.metrics.histogram("sql_columnar_query_s").observe(elapsed)
            for op in ops:
                prefix = f"sql_columnar_{op.kind}"
                self.metrics.counter(f"{prefix}_rows").inc(op.rows_out)
                self.metrics.counter(f"{prefix}_batches").inc(op.batches_out)
        if self.tracer is not None and self.tracer.enabled:
            for index, op in enumerate(ops):
                self.tracer.span(
                    "sql", f"columnar.{op.kind}", 0.0, op.seconds,
                    scope=str(index), **op.stats(),
                )
            self.tracer.instant(
                "sql", "columnar.query", 0.0,
                rows=result_rows, elapsed_s=round(elapsed, 6),
            )
