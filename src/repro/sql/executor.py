"""Row-level executor for logical plans.

This is a reference executor for correctness and examples, not performance:
rows are dictionaries keyed by both bare and binding-qualified column names
(``l_suppkey`` and ``l.l_suppkey``), joins hash on equi-keys extracted from
the condition, and aggregates accumulate per group key.
"""

from __future__ import annotations

import fnmatch
from typing import Callable, Iterable, Optional

from .ast import (
    AGGREGATE_FUNCTIONS,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    Literal,
    Star,
    UnaryOp,
)
from .logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalSubquery,
    PlanError,
)

Row = dict[str, object]
Database = dict[str, list[Row]]


class ExecutionError(RuntimeError):
    """Raised when a plan cannot be evaluated over the data."""


# ----------------------------------------------------------------------
# Expression evaluation
# ----------------------------------------------------------------------

#: fnmatch metacharacters that must be escaped when they appear literally
#: in a SQL LIKE pattern (``]`` is only special after an unescaped ``[``).
_GLOB_SPECIALS = frozenset("*?[")


def like_to_glob(pattern: str) -> str:
    """Translate a SQL LIKE pattern into an ``fnmatch`` glob.

    ``%`` and ``_`` become ``*`` and ``?``; glob metacharacters already
    present in the SQL pattern are wrapped in character classes so
    ``LIKE '10[%'`` matches a literal ``[`` instead of opening a class.
    """
    out: list[str] = []
    for ch in pattern:
        if ch == "%":
            out.append("*")
        elif ch == "_":
            out.append("?")
        elif ch in _GLOB_SPECIALS:
            out.append(f"[{ch}]")
        else:
            out.append(ch)
    return "".join(out)


def sql_like(value: object, pattern: object) -> bool:
    """SQL LIKE semantics shared by the row and columnar engines."""
    return fnmatch.fnmatchcase(str(value), like_to_glob(str(pattern)))


_SCALAR_FUNCTIONS: dict[str, Callable[..., object]] = {
    "substr": lambda s, start, length=None: (
        str(s)[int(start) - 1 : int(start) - 1 + int(length)]
        if length is not None
        else str(s)[int(start) - 1 :]
    ),
    "substring": lambda s, start, length=None: _SCALAR_FUNCTIONS["substr"](s, start, length),
    "upper": lambda s: str(s).upper(),
    "lower": lambda s: str(s).lower(),
    "length": lambda s: len(str(s)),
    "abs": lambda x: abs(x),  # noqa: ARG005
    "round": lambda x, digits=0: round(float(x), int(digits)),
    "coalesce": lambda *args: next((a for a in args if a is not None), None),
    "is_null": lambda x: x is None,
    "year": lambda s: int(str(s)[:4]),
}


def eval_expr(expr: Expr, row: Row) -> object:
    """Evaluate a scalar expression against one row."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        key = f"{expr.qualifier}.{expr.name}" if expr.qualifier else expr.name
        if key in row:
            return row[key]
        if expr.name in row:
            return row[expr.name]
        raise ExecutionError(f"column {key!r} not found in row")
    if isinstance(expr, Star):
        raise ExecutionError("* is only valid in select lists and count(*)")
    if isinstance(expr, UnaryOp):
        value = eval_expr(expr.operand, row)
        if expr.op == "-":
            # NULL propagates through arithmetic, same as binary operators.
            return None if value is None else -value
        if expr.op == "not":
            return not value
        raise ExecutionError(f"unknown unary operator {expr.op}")
    if isinstance(expr, BinaryOp):
        return _eval_binary(expr, row)
    if isinstance(expr, FunctionCall):
        name = expr.name.lower()
        if name in AGGREGATE_FUNCTIONS:
            raise ExecutionError(
                f"aggregate {name}() outside an aggregation context"
            )
        fn = _SCALAR_FUNCTIONS.get(name)
        if fn is None:
            raise ExecutionError(f"unknown function {expr.name!r}")
        args = [eval_expr(a, row) for a in expr.args]
        return fn(*args)
    if isinstance(expr, CaseExpr):
        for condition, value in expr.whens:
            if eval_expr(condition, row):
                return eval_expr(value, row)
        return eval_expr(expr.default, row) if expr.default is not None else None
    if isinstance(expr, InList):
        needle = eval_expr(expr.expr, row)
        matched = any(needle == eval_expr(v, row) for v in expr.values)
        return (not matched) if expr.negated else matched
    raise ExecutionError(f"cannot evaluate {expr!r}")


def _eval_binary(expr: BinaryOp, row: Row) -> object:
    op = expr.op
    if op == "and":
        return bool(eval_expr(expr.left, row)) and bool(eval_expr(expr.right, row))
    if op == "or":
        return bool(eval_expr(expr.left, row)) or bool(eval_expr(expr.right, row))
    left = eval_expr(expr.left, row)
    right = eval_expr(expr.right, row)
    if op == "like":
        return sql_like(left, right)
    if op == "||":
        return f"{left}{right}"
    if left is None or right is None:
        return None
    ops: dict[str, Callable[[object, object], object]] = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b,
        "%": lambda a, b: a % b,
        "=": lambda a, b: a == b,
        "<>": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        ">": lambda a, b: a > b,
        "<=": lambda a, b: a <= b,
        ">=": lambda a, b: a >= b,
    }
    fn = ops.get(op)
    if fn is None:
        raise ExecutionError(f"unknown operator {op!r}")
    return fn(left, right)


# ----------------------------------------------------------------------
# Aggregates
# ----------------------------------------------------------------------

class _Accumulator:
    """Accumulates one aggregate function over a group."""

    def __init__(self, call: FunctionCall) -> None:
        self.call = call
        self.name = call.name.lower()
        self.count = 0
        self.total = 0.0
        self.min: Optional[object] = None
        self.max: Optional[object] = None
        self.seen: Optional[set] = set() if call.distinct else None

    def add(self, row: Row) -> None:
        """Feed one input row into the accumulator."""
        if self.name == "count" and self.call.args and isinstance(self.call.args[0], Star):
            self.count += 1
            return
        if not self.call.args:
            raise ExecutionError(f"{self.name}() needs an argument")
        value = eval_expr(self.call.args[0], row)
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if isinstance(value, (int, float)):
            self.total += value
        if self.min is None or value < self.min:  # type: ignore[operator]
            self.min = value
        if self.max is None or value > self.max:  # type: ignore[operator]
            self.max = value

    def result(self) -> object:
        """The aggregate's final value for the group."""
        if self.name == "count":
            return self.count
        if self.name == "sum":
            return self.total if self.count else None
        if self.name == "avg":
            return self.total / self.count if self.count else None
        if self.name == "min":
            return self.min
        if self.name == "max":
            return self.max
        raise ExecutionError(f"unknown aggregate {self.name!r}")


def _collect_aggregates(expr: Expr, out: list[FunctionCall]) -> None:
    if isinstance(expr, FunctionCall):
        if expr.name.lower() in AGGREGATE_FUNCTIONS:
            out.append(expr)
            return
        for arg in expr.args:
            _collect_aggregates(arg, out)
    elif isinstance(expr, BinaryOp):
        _collect_aggregates(expr.left, out)
        _collect_aggregates(expr.right, out)
    elif isinstance(expr, UnaryOp):
        _collect_aggregates(expr.operand, out)
    elif isinstance(expr, CaseExpr):
        for condition, value in expr.whens:
            _collect_aggregates(condition, out)
            _collect_aggregates(value, out)
        if expr.default is not None:
            _collect_aggregates(expr.default, out)
    elif isinstance(expr, InList):
        _collect_aggregates(expr.expr, out)
        for value in expr.values:
            _collect_aggregates(value, out)


def _eval_with_aggregates(
    expr: Expr, group_row: Row, results: dict[str, object]
) -> object:
    """Evaluate an expression where aggregate sub-calls are pre-computed."""
    if isinstance(expr, FunctionCall) and expr.name.lower() in AGGREGATE_FUNCTIONS:
        return results[str(expr)]
    if isinstance(expr, BinaryOp):
        rewritten = BinaryOp(
            expr.op,
            _LiteralWrap(_eval_with_aggregates(expr.left, group_row, results)),
            _LiteralWrap(_eval_with_aggregates(expr.right, group_row, results)),
        )
        return _eval_binary(rewritten, group_row)
    if isinstance(expr, UnaryOp):
        inner = _eval_with_aggregates(expr.operand, group_row, results)
        return -inner if expr.op == "-" else (not inner)  # type: ignore[operator]
    return eval_expr(expr, group_row)


def _LiteralWrap(value: object) -> Literal:
    return Literal(value)


# ----------------------------------------------------------------------
# Plan execution
# ----------------------------------------------------------------------

def _qualify(row: Row, binding: Optional[str]) -> Row:
    if not binding:
        return dict(row)
    out = dict(row)
    for key, value in row.items():
        if "." not in key:
            out[f"{binding}.{key}"] = value
    return out


def _extract_equi_keys(condition: Expr) -> list[tuple[ColumnRef, ColumnRef]]:
    """Pull ``a.x = b.y`` pairs out of a conjunctive join condition."""
    pairs: list[tuple[ColumnRef, ColumnRef]] = []
    if isinstance(condition, BinaryOp):
        if condition.op == "and":
            pairs.extend(_extract_equi_keys(condition.left))
            pairs.extend(_extract_equi_keys(condition.right))
        elif condition.op == "=":
            if isinstance(condition.left, ColumnRef) and isinstance(
                condition.right, ColumnRef
            ):
                pairs.append((condition.left, condition.right))
    return pairs


def _resolve_side(ref: ColumnRef, row: Row) -> Optional[object]:
    key = f"{ref.qualifier}.{ref.name}" if ref.qualifier else ref.name
    if key in row:
        return row[key]
    if ref.name in row:
        return row[ref.name]
    return None


def _qualified_names(names: Iterable[str], binding: Optional[str]) -> list[str]:
    """Column names after :func:`_qualify`: bare names plus binding aliases."""
    out: dict[str, None] = dict.fromkeys(names)
    if binding:
        for name in list(out):
            if "." not in name:
                out[f"{binding}.{name}"] = None
    return list(out)


def plan_schema(node: LogicalNode, database: Database, catalog=None) -> Optional[list[str]]:
    """Best-effort static column names of ``node``'s output rows.

    Returns ``None`` when the shape cannot be determined without running
    the plan (an empty base table absent from ``catalog``, or a node whose
    output depends on the data).  Both engines use this to NULL-fill the
    right side of unmatched LEFT JOIN rows when the right input is empty.
    """
    if isinstance(node, LogicalScan):
        rows = database.get(node.table)
        if rows:
            return _qualified_names(rows[0].keys(), node.binding)
        if catalog is not None:
            try:
                names = catalog.resolve_table(node.table).column_names()
            except KeyError:
                return None
            return _qualified_names(names, node.binding)
        return None
    if isinstance(node, LogicalSubquery):
        inner = plan_schema(node.child, database, catalog)
        return None if inner is None else _qualified_names(inner, node.binding)
    if isinstance(node, (LogicalFilter, LogicalSort, LogicalLimit)):
        return plan_schema(node.child, database, catalog)
    if isinstance(node, LogicalJoin):
        left = plan_schema(node.left, database, catalog)
        right = plan_schema(node.right, database, catalog)
        if left is None or right is None:
            return None
        present = set(left)
        return left + [name for name in right if name not in present]
    if isinstance(node, (LogicalAggregate, LogicalProject)):
        names_out: dict[str, None] = {}
        for item in node.items:
            if isinstance(item.expr, Star):
                child = plan_schema(node.child, database, catalog)
                if child is None:
                    return None
                names_out.update(dict.fromkeys(child))
            else:
                names_out[item.output_name] = None
        return list(names_out)
    return None


class QueryExecutor:
    """Executes logical plans over an in-memory database."""

    def __init__(self, database: Database, catalog=None) -> None:
        self.database = database
        self.catalog = catalog

    def execute(self, node: LogicalNode) -> list[Row]:
        """Evaluate the plan and materialise all result rows."""
        return list(self._run(node))

    # ------------------------------------------------------------------
    def _run(self, node: LogicalNode) -> Iterable[Row]:
        if isinstance(node, LogicalScan):
            table = self.database.get(node.table)
            if table is None:
                raise ExecutionError(f"table {node.table!r} not loaded")
            return [_qualify(row, node.binding) for row in table]
        if isinstance(node, LogicalSubquery):
            rows = self.execute(node.child)
            return [_qualify(row, node.binding) for row in rows]
        if isinstance(node, LogicalFilter):
            return [r for r in self._run(node.child) if eval_expr(node.predicate, r)]
        if isinstance(node, LogicalJoin):
            return self._join(node)
        if isinstance(node, LogicalAggregate):
            return self._aggregate(node)
        if isinstance(node, LogicalProject):
            return self._project(node)
        if isinstance(node, LogicalSort):
            return self._sort(node)
        if isinstance(node, LogicalLimit):
            rows = list(self._run(node.child))
            return rows[: node.count]
        raise PlanError(f"cannot execute {node!r}")

    # ------------------------------------------------------------------
    def _join(self, node: LogicalJoin) -> list[Row]:
        left_rows = list(self._run(node.left))
        right_rows = list(self._run(node.right))
        keys = _extract_equi_keys(node.condition)
        null_right: Row = {}
        if node.kind == "left":
            names: dict[str, None] = {}
            if right_rows:
                for row in right_rows:
                    names.update(dict.fromkeys(row))
            else:
                names.update(dict.fromkeys(
                    plan_schema(node.right, self.database, self.catalog) or ()
                ))
            null_right = dict.fromkeys(names)
        out: list[Row] = []
        if keys:
            # Hash join: bucket the right side; decide per key pair which
            # side each ref resolves against using the first rows.
            probe_left = left_rows[0] if left_rows else {}
            oriented: list[tuple[ColumnRef, ColumnRef]] = []
            for a, b in keys:
                if _resolve_side(a, probe_left) is not None:
                    oriented.append((a, b))
                else:
                    oriented.append((b, a))
            buckets: dict[tuple, list[Row]] = {}
            for row in right_rows:
                key = tuple(_resolve_side(r, row) for _, r in oriented)
                buckets.setdefault(key, []).append(row)
            for lrow in left_rows:
                key = tuple(_resolve_side(l, lrow) for l, _ in oriented)
                matches = buckets.get(key, [])
                matched = False
                for rrow in matches:
                    combined = {**lrow, **rrow}
                    if eval_expr(node.condition, combined):
                        out.append(combined)
                        matched = True
                if not matched and node.kind == "left":
                    out.append({**lrow, **null_right})
        else:
            for lrow in left_rows:
                matched = False
                for rrow in right_rows:
                    combined = {**lrow, **rrow}
                    if eval_expr(node.condition, combined):
                        out.append(combined)
                        matched = True
                if not matched and node.kind == "left":
                    out.append({**lrow, **null_right})
        return out

    # ------------------------------------------------------------------
    def _aggregate(self, node: LogicalAggregate) -> list[Row]:
        child_rows = list(self._run(node.child))
        calls: list[FunctionCall] = []
        for item in node.items:
            _collect_aggregates(item.expr, calls)
        if node.having is not None:
            _collect_aggregates(node.having, calls)
        unique_calls = {str(c): c for c in calls}

        groups: dict[tuple, tuple[Row, dict[str, _Accumulator]]] = {}
        for row in child_rows:
            key = tuple(
                _hashable(eval_expr(g, row)) for g in node.group_by
            ) if node.group_by else ()
            if key not in groups:
                groups[key] = (row, {k: _Accumulator(c) for k, c in unique_calls.items()})
            for acc in groups[key][1].values():
                acc.add(row)
        if not groups and not node.group_by:
            empty_accs = {k: _Accumulator(c) for k, c in unique_calls.items()}
            groups[()] = ({}, empty_accs)

        out: list[Row] = []
        for representative, accs in groups.values():
            results = {k: acc.result() for k, acc in accs.items()}
            if node.having is not None:
                if not _eval_with_aggregates(node.having, representative, results):
                    continue
            out_row: Row = {}
            for item in node.items:
                out_row[item.output_name] = _eval_with_aggregates(
                    item.expr, representative, results
                )
            out.append(out_row)
        return out

    # ------------------------------------------------------------------
    def _project(self, node: LogicalProject) -> list[Row]:
        out: list[Row] = []
        for row in self._run(node.child):
            if len(node.items) == 1 and isinstance(node.items[0].expr, Star):
                out_row = dict(row)
            else:
                out_row = {}
                for item in node.items:
                    if isinstance(item.expr, Star):
                        out_row.update(row)
                    else:
                        out_row[item.output_name] = eval_expr(item.expr, row)
            out.append(out_row)
        if node.distinct:
            seen: set[tuple] = set()
            deduped: list[Row] = []
            for row in out:
                key = tuple(sorted((k, _hashable(v)) for k, v in row.items()))
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            return deduped
        return out

    # ------------------------------------------------------------------
    def _sort(self, node: LogicalSort) -> list[Row]:
        rows = list(self._run(node.child))
        for order in reversed(node.order_by):
            rows.sort(
                key=lambda r, o=order: _sort_key(eval_expr(o.expr, r)),
                reverse=order.descending,
            )
        return rows


def _hashable(value: object) -> object:
    return tuple(value) if isinstance(value, list) else value


def _sort_key(value: object) -> tuple:
    # None sorts first; mixed types sort by type name then value.
    if value is None:
        return (0, "", "")
    return (1, type(value).__name__, value)


def run_query(sql: str, database: Database, catalog=None) -> list[Row]:
    """Parse, plan, and execute ``sql`` over ``database``."""
    from .catalog import DEFAULT_CATALOG
    from .logical import plan_statement
    from .parser import parse

    statement = parse(sql)
    plan = plan_statement(statement, catalog or DEFAULT_CATALOG)
    return QueryExecutor(database, catalog or DEFAULT_CATALOG).execute(plan)
