"""Deterministic mini TPC-H data generator for the row executor.

Generates laptop-sized tables that follow the TPC-H schema and key
relationships (foreign keys join correctly), so the examples can run Fig. 1
style queries end to end.  Sizes are controlled by ``scale``: the defaults
give a database of a few thousand rows.
"""

from __future__ import annotations

import random

from .batch import ColumnTable
from .executor import Database, Row

NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_COLORS = ["green", "blue", "red", "ivory", "azure", "plum", "khaki", "puff"]
_TYPES = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_SEGMENTS = ["BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE"]
_MODES = ["AIR", "RAIL", "SHIP", "TRUCK", "MAIL"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]


def _date(rng: random.Random, start_year: int = 1992, end_year: int = 1998) -> str:
    year = rng.randint(start_year, end_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"


def generate_database(
    scale: float = 1.0,
    seed: int = 7,
    suppliers: int = 20,
    parts: int = 80,
    customers: int = 60,
    orders: int = 300,
    max_lines_per_order: int = 4,
    layout: str = "rows",
) -> Database:
    """Build an in-memory mini TPC-H database with valid foreign keys.

    ``layout="rows"`` (the default) stores each table as a list of row
    dicts; ``layout="columnar"`` stores :class:`~repro.sql.batch.ColumnTable`
    objects — the same logical data, already encoded as typed arrays, so
    the columnar engine scans with zero per-row transposition.  Both
    layouts work with both engines (a ColumnTable iterates as row dicts).
    """
    if layout not in ("rows", "columnar"):
        raise ValueError(f"layout must be 'rows' or 'columnar', got {layout!r}")
    rng = random.Random(seed)
    n_suppliers = max(1, int(suppliers * scale))
    n_parts = max(1, int(parts * scale))
    n_customers = max(1, int(customers * scale))
    n_orders = max(1, int(orders * scale))

    database: Database = {}
    database["region"] = [
        {"r_regionkey": i, "r_name": name, "r_comment": ""}
        for i, name in enumerate(REGIONS)
    ]
    database["nation"] = [
        {"n_nationkey": i, "n_name": name, "n_regionkey": region, "n_comment": ""}
        for i, (name, region) in enumerate(NATIONS)
    ]
    database["supplier"] = [
        {
            "s_suppkey": i,
            "s_name": f"Supplier#{i:06d}",
            "s_address": f"addr-{i}",
            "s_nationkey": rng.randrange(len(NATIONS)),
            "s_phone": f"{rng.randint(10, 34)}-{rng.randint(100, 999)}",
            "s_acctbal": round(rng.uniform(-999.0, 9999.0), 2),
            "s_comment": "",
        }
        for i in range(n_suppliers)
    ]
    database["part"] = [
        {
            "p_partkey": i,
            "p_name": f"{rng.choice(_COLORS)} {rng.choice(_COLORS)} part{i}",
            "p_mfgr": f"Manufacturer#{rng.randint(1, 5)}",
            "p_brand": f"Brand#{rng.randint(11, 55)}",
            "p_type": f"{rng.choice(_TYPES)} BRUSHED",
            "p_size": rng.randint(1, 50),
            "p_container": "SM BOX",
            "p_retailprice": round(900 + i / 10 + rng.uniform(0, 100), 2),
            "p_comment": "",
        }
        for i in range(n_parts)
    ]
    partsupp: list[Row] = []
    for part in database["part"]:
        for supplier_offset in range(min(4, n_suppliers)):
            suppkey = (part["p_partkey"] + supplier_offset * 7) % n_suppliers
            partsupp.append(
                {
                    "ps_partkey": part["p_partkey"],
                    "ps_suppkey": suppkey,
                    "ps_availqty": rng.randint(1, 9999),
                    "ps_supplycost": round(rng.uniform(1.0, 1000.0), 2),
                    "ps_comment": "",
                }
            )
    database["partsupp"] = partsupp
    database["customer"] = [
        {
            "c_custkey": i,
            "c_name": f"Customer#{i:06d}",
            "c_address": f"caddr-{i}",
            "c_nationkey": rng.randrange(len(NATIONS)),
            "c_phone": f"{rng.randint(10, 34)}-{rng.randint(100, 999)}",
            "c_acctbal": round(rng.uniform(-999.0, 9999.0), 2),
            "c_mktsegment": rng.choice(_SEGMENTS),
            "c_comment": "",
        }
        for i in range(n_customers)
    ]
    orders_rows: list[Row] = []
    lineitem_rows: list[Row] = []
    ps_index: dict[int, list[Row]] = {}
    for entry in partsupp:
        ps_index.setdefault(entry["ps_partkey"], []).append(entry)
    for okey in range(n_orders):
        order = {
            "o_orderkey": okey,
            "o_custkey": rng.randrange(n_customers),
            "o_orderstatus": rng.choice(["F", "O", "P"]),
            "o_totalprice": 0.0,
            "o_orderdate": _date(rng),
            "o_orderpriority": rng.choice(_PRIORITIES),
            "o_clerk": f"Clerk#{rng.randint(1, 50):06d}",
            "o_shippriority": 0,
            "o_comment": "",
        }
        total = 0.0
        for line in range(1, rng.randint(1, max_lines_per_order) + 1):
            partkey = rng.randrange(n_parts)
            supplier_entry = rng.choice(ps_index[partkey])
            quantity = float(rng.randint(1, 50))
            extended = round(quantity * (900 + partkey / 10), 2)
            total += extended
            lineitem_rows.append(
                {
                    "l_orderkey": okey,
                    "l_partkey": partkey,
                    "l_suppkey": supplier_entry["ps_suppkey"],
                    "l_linenumber": line,
                    "l_quantity": quantity,
                    "l_extendedprice": extended,
                    "l_discount": round(rng.uniform(0.0, 0.1), 2),
                    "l_tax": round(rng.uniform(0.0, 0.08), 2),
                    "l_returnflag": rng.choice(["A", "N", "R"]),
                    "l_linestatus": rng.choice(["O", "F"]),
                    "l_shipdate": _date(rng),
                    "l_commitdate": _date(rng),
                    "l_receiptdate": _date(rng),
                    "l_shipinstruct": "NONE",
                    "l_shipmode": rng.choice(_MODES),
                    "l_comment": "",
                }
            )
        order["o_totalprice"] = round(total, 2)
        orders_rows.append(order)
    database["orders"] = orders_rows
    database["lineitem"] = lineitem_rows
    if layout == "columnar":
        return {
            name: ColumnTable.from_rows(rows) for name, rows in database.items()
        }
    return database
