#!/usr/bin/env python3
"""The Fig. 1 path: a Swift-language (SQL-like) job, end to end.

Shows both halves of the front end:

* the *planning* path — SQL text -> AST -> logical plan -> Swift job DAG ->
  graphlet partitioning -> simulated execution at cloud scale; and
* the *answer* path — the same query executed row-by-row over a generated
  mini TPC-H database, so you can see actual results.
"""

from repro import Cluster, Job, SwiftRuntime, swift_policy
from repro.core import partition_job
from repro.sql import (
    FIG1_QUERY,
    compile_sql,
    explain,
    generate_database,
    parse,
    plan_statement,
    run_query,
)


def main() -> None:
    print("=== The paper's Fig. 1 job (TPC-H Q9 in Swift language) ===")
    print(FIG1_QUERY.strip()[:300] + " ...")

    print("\n=== Logical plan ===")
    statement = parse(FIG1_QUERY)
    logical = plan_statement(statement)
    print(explain(logical))

    print("\n=== Physical plan: the Swift job DAG ===")
    dag = compile_sql(FIG1_QUERY, scale_factor=1000, job_id="tpch_q9_sql")
    for stage in dag:
        operators = " -> ".join(str(op) for op in stage.operators)
        print(f"  {stage.name:<4} x{stage.task_count:<4} [{operators}]")
    print(f"  edges: {[(e.src, e.dst) for e in dag.edges]}")

    print("\n=== Graphlets (shuffle-mode-aware partitioning) ===")
    graph = partition_job(dag)
    for graphlet in graph.graphlets:
        print(f"  graphlet {graphlet.graphlet_id}: {graphlet.stage_names}")

    print("\n=== Simulated execution on a 100-node cluster ===")
    runtime = SwiftRuntime(Cluster.build(100, 32), swift_policy())
    result = runtime.execute(Job(dag=dag))
    print(f"  run time: {result.metrics.run_time:.1f}s with "
          f"{len(result.metrics.tasks)} tasks")
    print(f"  shuffle schemes: {result.metrics.shuffle_schemes}")

    print("\n=== Row-level answers on a mini TPC-H database ===")
    database = generate_database()
    rows = run_query(FIG1_QUERY, database)
    print(f"  {len(rows)} (nation, year) groups; top 5 by profit:")
    for row in sorted(rows, key=lambda r: -r["sum_profit"])[:5]:
        print(f"    {row['nation']:<16} {row['o_year']}  "
              f"profit={row['sum_profit']:12.2f}")


if __name__ == "__main__":
    main()
