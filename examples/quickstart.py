#!/usr/bin/env python3
"""Quickstart: define a DAG job, run it on Swift, inspect the results.

Walks the core loop of the library:

1. build a simulated cluster (pre-launched executors, Cache Workers);
2. describe a job as a DAG of stages with shuffle edges;
3. see how Swift partitions it into graphlets (Algorithms 1-2);
4. execute it and read the per-task 4-phase metrics;
5. compare against the Spark baseline on the same job.
"""

from repro import Cluster, Edge, Job, JobDAG, Stage, SwiftRuntime, swift_policy
from repro.baselines import spark_policy
from repro.core import OperatorKind as K, ops, partition_job

MB = 1e6


def build_job() -> Job:
    """A three-stage job: scan -> sort-join -> sink.

    The middle stage contains a MergeSort, so its outgoing edge is a
    *barrier* edge and Swift splits the job into two graphlets.
    """
    stages = [
        Stage(
            name="scan",
            task_count=24,
            operators=ops(K.TABLE_SCAN, K.FILTER, K.SHUFFLE_WRITE),
            scan_bytes_per_task=256 * MB,
            output_bytes_per_task=128 * MB,
        ),
        Stage(
            name="join",
            task_count=12,
            operators=ops(K.SHUFFLE_READ, K.MERGE_JOIN, K.MERGE_SORT, K.SHUFFLE_WRITE),
            output_bytes_per_task=32 * MB,
        ),
        Stage(
            name="sink",
            task_count=1,
            operators=ops(K.SHUFFLE_READ, K.LIMIT, K.ADHOC_SINK),
            output_bytes_per_task=1 * MB,
        ),
    ]
    edges = [Edge("scan", "join"), Edge("join", "sink")]
    return Job(dag=JobDAG("quickstart", stages, edges))


def main() -> None:
    job = build_job()

    print("=== Graphlet partitioning (Algorithms 1-2) ===")
    graph = partition_job(job.dag)
    for graphlet in graph.graphlets:
        print(f"  graphlet {graphlet.graphlet_id}: {graphlet.stage_names} "
              f"(trigger: {graphlet.trigger_stage})")

    print("\n=== Execution on Swift ===")
    cluster = Cluster.build(n_machines=8, executors_per_machine=8)
    runtime = SwiftRuntime(cluster, swift_policy())
    result = runtime.execute(job)
    print(f"  run time: {result.metrics.run_time:.2f}s  "
          f"latency: {result.metrics.latency:.2f}s  "
          f"tasks: {len(result.metrics.tasks)}")
    print(f"  shuffle schemes per edge: {result.metrics.shuffle_schemes}")

    print("\n=== 4-phase breakdown per stage (launch/read/process/write) ===")
    for stage in job.dag.topo_order():
        phases = result.metrics.phase_breakdown(stage)
        print(f"  {stage:<6} L={phases.launch:6.2f}s SR={phases.shuffle_read:6.2f}s "
              f"P={phases.processing:6.2f}s SW={phases.shuffle_write:6.2f}s")

    print("\n=== Same job on the Spark baseline ===")
    spark_runtime = SwiftRuntime(
        Cluster.build(n_machines=8, executors_per_machine=8), spark_policy()
    )
    spark_result = spark_runtime.execute(build_job())
    speedup = spark_result.metrics.run_time / result.metrics.run_time
    print(f"  spark run time: {spark_result.metrics.run_time:.2f}s  "
          f"(Swift speedup: {speedup:.2f}x)")


if __name__ == "__main__":
    main()
