#!/usr/bin/env python3
"""Fine-grained failure recovery versus whole-job restart (Fig. 14).

Injects one failure at a time into the stages of TPC-H Q13 — at 20%, 40%,
60%, 80%, and ~100% of the non-failure execution time — and compares
Swift's graphlet-based recovery against the restart-the-whole-job policy.
Also demonstrates the recovery-case taxonomy of Section IV-B.
"""

from repro import Cluster, FailureKind, FailurePlan, FailureSpec, SwiftRuntime, swift_policy
from repro.baselines import restart_policy
from repro.core import classify_failure, partition_job
from repro.workloads import tpch

INJECTIONS = ((0.2, "M2"), (0.4, "J3"), (0.6, "R4"), (0.8, "R5"), (0.98, "R6"))


def run_with(policy, spec, reference):
    runtime = SwiftRuntime(
        Cluster.build(100, 32),
        policy,
        failure_plan=FailurePlan([spec]) if spec else FailurePlan(),
        reference_duration=reference,
    )
    return runtime.execute(tpch.query_job(13)).metrics.run_time


def main() -> None:
    dag = tpch.query_dag(13)
    graph = partition_job(dag)

    print("=== TPC-H Q13 structure (paper Fig. 13) ===")
    for row in tpch.Q13_DETAILS:
        print(f"  {row['stage']:<3} {row['tasks']:>4} tasks  "
              f"{row['input_records_per_task']:>9,} records/task  "
              f"{row['input_size_per_task']:>6}/task")

    print("\n=== Recovery case per stage (Section IV-B) ===")
    for stage in dag.topo_order():
        case = classify_failure(dag, graph, stage)
        graphlet = graph.stage_to_graphlet[stage]
        print(f"  {stage:<3} in graphlet {graphlet}: {case.value}")

    baseline = run_with(swift_policy(), None, 100.0)
    print(f"\nnon-failure execution time: {baseline:.1f}s (normalized to 100)")

    print("\n=== Single-failure injections (paper Fig. 14) ===")
    print(f"  {'inject@':<8} {'stage':<6} {'Swift slowdown':<16} {'restart slowdown'}")
    for fraction, stage in INJECTIONS:
        spec = FailureSpec(kind=FailureKind.TASK_CRASH, stage=stage,
                           at_fraction=fraction)
        swift_t = run_with(swift_policy(), spec, baseline)
        restart_t = run_with(restart_policy(), spec, baseline)
        swift_pct = 100 * (swift_t / baseline - 1)
        restart_pct = 100 * (restart_t / baseline - 1)
        print(f"  {round(100 * fraction):<8} {stage:<6} "
              f"{swift_pct:>8.1f}%        {restart_pct:>8.1f}%")
    print("\npaper: Swift stays under 10% for every injection; job restart "
          "pays roughly the injection time again.")


if __name__ == "__main__":
    main()
