#!/usr/bin/env python3
"""Structured tracing walkthrough: record, inspect, aggregate, export.

Runs a Terasort job with an injected task crash through the ``repro.api``
facade with tracing enabled, then tours the result: the typed record
stream (spans and instants per category), the failure-detection /
recovery timeline, the aggregated metrics registry, and the Chrome
``trace_event`` / JSONL exports (the former loads directly in
https://ui.perfetto.dev or ``chrome://tracing``).
"""

import tempfile
from collections import Counter
from pathlib import Path

from repro import RuntimeConfig, Simulation, TraceConfig
from repro.obs import Category, read_jsonl
from repro.sim.failures import FailureKind, FailureSpec
from repro.workloads import terasort


def main() -> None:
    config = RuntimeConfig(
        n_machines=8, executors_per_machine=8, reference_duration=20.0,
    )
    config.failure_plan.add(FailureSpec(
        kind=FailureKind.TASK_CRASH, stage="map", at_fraction=0.5,
    ))
    out_dir = Path(tempfile.mkdtemp(prefix="repro_trace_"))
    trace = TraceConfig(path=str(out_dir / "terasort"), format="both")

    print("Running a 20x20 Terasort with one injected task crash...\n")
    outcome = Simulation(config).run(terasort.terasort_job(20, 20), trace=trace)

    print(f"completed={outcome.completed}  makespan={outcome.makespan:.2f}s  "
          f"records={len(outcome.trace)}\n")

    print("Records per category:")
    for cat, count in sorted(Counter(r.cat for r in outcome.trace).items()):
        print(f"  {cat:<10} {count}")

    print("\nFailure/recovery timeline:")
    for record in outcome.trace:
        if record.cat in (Category.FAILURE, Category.RECOVERY):
            detail = ", ".join(f"{k}={v}" for k, v in record.args.items())
            print(f"  t={record.ts:7.3f}s  {record.name:<18} {detail}")

    metrics = outcome.metrics.to_dict()
    print("\nAggregated metrics (selection):")
    for name in ("tasks_finished", "task_reruns", "failures_observed"):
        print(f"  {name:<20} {metrics['counters'].get(name, 0):.0f}")
    idle = outcome.metrics.histogram("task_idle_ratio")
    print(f"  mean IdleRatio       {100 * idle.mean:.1f}%")

    print("\nExports:")
    for path in outcome.trace_files:
        print(f"  {path}")
    reloaded = read_jsonl(outcome.trace_files[-1])
    assert reloaded == outcome.trace
    print(f"\nJSONL round trip OK ({len(reloaded)} records); load the .json "
          "file in https://ui.perfetto.dev to browse the timeline.")


if __name__ == "__main__":
    main()
