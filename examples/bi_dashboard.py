#!/usr/bin/env python3
"""Interactive BI workload: latency SLOs under mixed load.

The paper's introduction motivates Swift with MaxCompute's interactive
business-intelligence workloads: many small dashboard queries must stay
fast while large batch jobs churn in the background.  This example runs
that scenario: a stream of small aggregation queries (dashboard tiles)
shares the cluster with heavy batch joins, under Swift and under JetScope's
whole-job gang scheduling, and reports the dashboard's latency percentiles
against an interactivity SLO.
"""

import random

from repro import Cluster, Job, SwiftRuntime, swift_policy
from repro.baselines import jetscope_policy
from repro.core import quantile
from repro.core.dag import Edge, JobDAG, Stage
from repro.core.operators import OperatorKind as K, ops
from repro.workloads import tpch

MB = 1e6
SLO_SECONDS = 15.0


def dashboard_query(index: int, rng: random.Random) -> Job:
    """A small two-stage aggregation: scan a slice, aggregate, render."""
    scan_tasks = rng.randint(4, 16)
    stages = [
        Stage(
            name="scan", task_count=scan_tasks,
            operators=ops(K.TABLE_SCAN, K.FILTER, K.SHUFFLE_WRITE),
            scan_bytes_per_task=rng.uniform(40, 120) * MB,
            output_bytes_per_task=8 * MB,
        ),
        Stage(
            name="agg", task_count=2,
            operators=ops(K.SHUFFLE_READ, K.HASH_AGGREGATE, K.ADHOC_SINK),
            output_bytes_per_task=0.5 * MB,
        ),
    ]
    dag = JobDAG(f"tile_{index:03d}", stages, [Edge("scan", "agg")])
    return Job(dag=dag, submit_time=index * rng.uniform(0.5, 2.0))


def batch_job(index: int) -> Job:
    """A heavy background job: TPC-H Q5 at reduced scale."""
    job = tpch.query_job(5, scale=0.15, submit_time=index * 25.0)
    job.dag.job_id = f"batch_{index}"
    return job


def run_mix(policy):
    rng = random.Random(17)
    jobs = [dashboard_query(i, rng) for i in range(40)]
    jobs += [batch_job(i) for i in range(3)]
    cluster = Cluster.build(32, 32)
    runtime = SwiftRuntime(cluster, policy)
    runtime.submit_all(jobs)
    results = runtime.run()
    return [r.metrics.latency for r in results if r.job_id.startswith("tile_")]


def main() -> None:
    print(f"40 dashboard tiles + 3 batch jobs on 32 nodes; SLO {SLO_SECONDS:.0f}s\n")
    print(f"{'system':<10} {'p50':>7} {'p90':>7} {'p99':>7} {'SLO met':>8}")
    for policy in (swift_policy(), jetscope_policy()):
        latencies = run_mix(policy)
        p50 = quantile(latencies, 0.50)
        p90 = quantile(latencies, 0.90)
        p99 = quantile(latencies, 0.99)
        met = sum(1 for v in latencies if v <= SLO_SECONDS) / len(latencies)
        print(f"{policy.name:<10} {p50:6.1f}s {p90:6.1f}s {p99:6.1f}s {met:7.0%}")
    print(
        "\nGraphlet-grained gangs let tiles slip between the batch jobs' "
        "stages; whole-job gangs make tiles queue behind them."
    )


if __name__ == "__main__":
    main()
