#!/usr/bin/env python3
"""Replay a production-style trace against Swift, JetScope, and Bubble.

A scaled-down version of the paper's Figs. 10-11 experiment: the same
Fig. 8-calibrated trace is executed under all three systems on a 100-node
cluster, and the script reports makespans, mean latencies, the normalized
latency distribution, and an executor-utilization sparkline.
"""

from repro.baselines import bubble_policy, jetscope_policy
from repro.core import normalized_cdf, swift_policy, utilization_series
from repro.experiments import makespan, mean_latency, run_jobs
from repro.experiments.plots import sparkline
from repro.workloads import TraceConfig, generate_trace

N_JOBS = 250


def main() -> None:
    jobs = generate_trace(TraceConfig(n_jobs=N_JOBS, mean_interarrival=0.08))
    print(f"Replaying {N_JOBS} trace jobs "
          f"({sum(j.dag.total_tasks() for j in jobs)} tasks) on 100 nodes...\n")

    latencies: dict[str, dict[str, float]] = {}
    spans: dict[str, float] = {}
    series: dict[str, list[int]] = {}
    for policy in (swift_policy(), bubble_policy(), jetscope_policy()):
        results, runtime = run_jobs(policy, jobs)
        spans[policy.name] = makespan(results)
        latencies[policy.name] = {r.job_id: r.metrics.latency for r in results}
        horizon = spans[policy.name]
        samples = utilization_series(runtime.busy_intervals, step=horizon / 120, horizon=horizon)
        series[policy.name] = [s.running_executors for s in samples]
        print(f"{policy.name:<10} makespan={spans[policy.name]:7.1f}s  "
              f"mean latency={mean_latency(results):6.1f}s")

    print("\nSpeedup over JetScope (paper: Swift 2.44x, Bubble 1.98x):")
    for name in ("swift", "bubble"):
        print(f"  {name:<8} {spans['jetscope'] / spans[name]:.2f}x")

    print("\nNormalized job latency vs Swift (paper Fig. 11):")
    swift_lat = latencies["swift"]
    for name in ("bubble", "jetscope"):
        ordered = sorted(swift_lat)
        cdf = normalized_cdf(
            [latencies[name][j] for j in ordered], [swift_lat[j] for j in ordered]
        )
        ratios = [r for r, _ in cdf]
        median = ratios[len(ratios) // 2]
        frac2x = sum(1 for r in ratios if r >= 2.0) / len(ratios)
        print(f"  {name:<10} median ratio={median:.2f}  jobs >=2x Swift: {frac2x:.0%}")

    print("\nRunning executors over time (paper Fig. 10):")
    for name, values in series.items():
        print(f"  {name:<10} |{sparkline(values)}|")


if __name__ == "__main__":
    main()
