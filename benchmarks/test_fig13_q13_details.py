"""Fig. 13 — the TPC-H Q13 job structure.

The built DAG must carry the exact task counts the paper reports per stage.
"""

from repro.experiments import fig13_q13_details

from bench_helpers import report


def test_fig13_q13_details(benchmark):
    result = benchmark.pedantic(fig13_q13_details, rounds=1, iterations=1)
    report(result)
    for row in result.rows:
        assert row["built_tasks"] == row["paper_tasks"]
