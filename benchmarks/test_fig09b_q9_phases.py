"""Fig. 9(b) — 4-phase breakdown of TPC-H Q9's critical stages.

Paper: Spark spends >71s launching critical tasks and 137.8s/133.9s on disk
shuffle write/read, while Swift's in-network shuffle reads take 8.92s and
writes 9.61s.  Shape criteria: Swift launch ~0 vs multi-second Spark
launches; Spark shuffle I/O dominates Swift's by a large factor.
"""

from repro.experiments import fig9b_q9_phases

from bench_helpers import report


def test_fig9b_q9_phases(benchmark):
    result = benchmark.pedantic(fig9b_q9_phases, rounds=1, iterations=1)
    report(result)
    spark_launch_total = sum(row["spark_L"] for row in result.rows)
    swift_launch_total = sum(row["swift_L"] for row in result.rows)
    assert spark_launch_total > 10 * swift_launch_total
    spark_shuffle = sum(row["spark_SR"] + row["spark_SW"] for row in result.rows)
    swift_shuffle = sum(row["swift_SR"] + row["swift_SW"] for row in result.rows)
    assert spark_shuffle > 3 * swift_shuffle
