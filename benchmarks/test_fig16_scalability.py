"""Fig. 16 — strong scaling from 10,000 to 140,000 executors.

Paper: near-linear speedup across the whole range (the measured curve sits
slightly below the ideal line at 140k).  Shape criteria: speedup grows
monotonically and reaches a large fraction of ideal at every point.
"""

from repro.experiments import fig16_scalability

from bench_helpers import report


def test_fig16_scalability(benchmark):
    result = benchmark.pedantic(
        fig16_scalability,
        kwargs={"executor_counts": (10_000, 20_000, 40_000, 80_000, 140_000)},
        rounds=1,
        iterations=1,
    )
    report(result)
    speedups = [row["speedup"] for row in result.rows]
    ideals = [row["ideal"] for row in result.rows]
    assert all(b > a for a, b in zip(speedups, speedups[1:]))
    for speedup, ideal in zip(speedups, ideals):
        assert speedup >= 0.6 * ideal        # near-linear
        assert speedup <= ideal * 1.05       # and never super-linear
