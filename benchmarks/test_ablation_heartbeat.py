"""Ablation — heartbeat-interval sensitivity of machine-crash recovery.

Section IV-A picks 5/10/15s intervals by cluster scale: longer intervals
mean later detection and larger slowdowns; very short intervals buy little
(the re-run itself dominates).
"""

from repro.experiments import heartbeat_interval_ablation

from bench_helpers import report


def test_ablation_heartbeat(benchmark):
    result = benchmark.pedantic(heartbeat_interval_ablation, rounds=1, iterations=1)
    report(result)
    slowdowns = [row["slowdown_pct"] for row in result.rows]
    assert all(b >= a for a, b in zip(slowdowns, slowdowns[1:]))
    assert slowdowns[-1] > slowdowns[0] + 10.0
