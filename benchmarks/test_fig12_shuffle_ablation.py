"""Fig. 12 — shuffle-scheme ablation by shuffle-edge-size class.

Paper (normalized to Direct=1 per class): small -> Direct best (Local 1.04,
Remote 1.03); medium -> Remote best (Direct 1.25, Local 1.038); large ->
Local best (Direct 2.083, Remote 1.479).  Shape criterion: the best scheme
per class matches, i.e. the crossovers fall at the 10k/90k thresholds.
"""

from repro.experiments import fig12_shuffle_ablation

from bench_helpers import report


def test_fig12_shuffle_ablation(benchmark):
    result = benchmark.pedantic(
        fig12_shuffle_ablation, kwargs={"n_jobs": 8}, rounds=1, iterations=1
    )
    report(result)
    rows = {row["shuffle_class"]: row for row in result.rows}
    # Best scheme per class matches the paper.
    small = rows["small"]
    assert small["direct"] <= small["local"] + 1e-9
    assert small["direct"] <= small["remote"] + 0.02
    medium = rows["medium"]
    assert medium["remote"] <= medium["local"]
    assert medium["remote"] < medium["direct"]
    assert medium["direct"] / medium["remote"] > 1.10   # paper: +25%
    large = rows["large"]
    assert large["local"] < large["remote"] < large["direct"]
    assert large["direct"] / large["local"] > 1.6       # paper: +108%
