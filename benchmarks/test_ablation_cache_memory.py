"""Ablation — Cache Worker memory pressure and LRU spill.

Section III-B: memory shortage is rare (<1%) and chunked spills "would not
hurt performance greatly".  Expectation: generous caches show zero spill
and flat latency; only severely undersized caches degrade.
"""

from repro.experiments import cache_memory_ablation

from bench_helpers import report


def test_ablation_cache_memory(benchmark):
    result = benchmark.pedantic(
        cache_memory_ablation,
        kwargs={"capacities_gb": (0.2, 0.5, 2.0, 8.0, 48.0)},
        rounds=1,
        iterations=1,
    )
    report(result)
    latencies = [row["mean_latency_s"] for row in result.rows]
    # Latency is non-increasing as the cache grows, and the two generous
    # configurations are indistinguishable (spill never triggers).
    assert all(b <= a + 1e-6 for a, b in zip(latencies, latencies[1:]))
    assert latencies[-1] == latencies[-2]
    assert latencies[0] > latencies[-1]
