"""Microbenchmarks of the substrate itself (not a paper figure).

These keep the simulator honest: the paper-scale experiments replay
hundreds of thousands of task events, so event throughput and end-to-end
job simulation rate are tracked here with real multi-round statistics.
"""

from repro.core.policies import swift_policy
from repro.core.runtime import SwiftRuntime
from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.workloads import terasort


def test_event_engine_throughput(benchmark):
    def run_events():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(float(i % 97) / 10, lambda: None)
        sim.run()
        return sim.events_processed

    processed = benchmark(run_events)
    assert processed == 10_000


def test_terasort_simulation_rate(benchmark):
    def run_job():
        runtime = SwiftRuntime(Cluster.build(20, 16), swift_policy())
        return runtime.execute(terasort.terasort_job(100, 100))

    result = benchmark.pedantic(run_job, rounds=3, iterations=1)
    assert result.completed


def test_cancel_heavy_engine_throughput(benchmark):
    """Lazy deletion + compaction under a 75%-cancelled event load."""

    def run_events():
        sim = Simulator()
        events = [sim.schedule(float(i % 97) / 10, lambda: None)
                  for i in range(10_000)]
        for event in events[:7_500]:
            event.cancel()
        sim.run()
        return sim.events_processed

    processed = benchmark(run_events)
    assert processed == 2_500


def test_terasort_legacy_kernel_rate(benchmark):
    """The pre-fast-path baseline tracked alongside the fast path above:
    one simulator event per task, driven by the peek/step loop."""
    from repro.experiments.bench import _run_terasort

    tasks = benchmark.pedantic(
        lambda: _run_terasort(100, 100, fast_path=False, peek_step=True),
        rounds=3, iterations=1,
    )
    assert tasks == 200


def test_multi_job_trace_replay_rate(benchmark):
    """End-to-end replay of a multi-job trace (the Fig. 10 workload shape)
    through the cell harness, including result normalization."""
    from repro.experiments.bench import bench_parallel_replay

    stats = benchmark.pedantic(
        lambda: bench_parallel_replay(n_jobs=60, workers=2),
        rounds=2, iterations=1,
    )
    assert stats["n_jobs"] == 60
    assert stats["serial_s"] > 0 and stats["parallel_s"] > 0


def test_partitioning_rate(benchmark):
    from repro.core.partition import partition_job
    from repro.workloads import tpch

    dag = tpch.query_dag(9)
    graph = benchmark(partition_job, dag)
    assert len(graph) == 4
