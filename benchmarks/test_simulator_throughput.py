"""Microbenchmarks of the substrate itself (not a paper figure).

These keep the simulator honest: the paper-scale experiments replay
hundreds of thousands of task events, so event throughput and end-to-end
job simulation rate are tracked here with real multi-round statistics.
"""

from repro.core.policies import swift_policy
from repro.core.runtime import SwiftRuntime
from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.workloads import terasort


def test_event_engine_throughput(benchmark):
    def run_events():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(float(i % 97) / 10, lambda: None)
        sim.run()
        return sim.events_processed

    processed = benchmark(run_events)
    assert processed == 10_000


def test_terasort_simulation_rate(benchmark):
    def run_job():
        runtime = SwiftRuntime(Cluster.build(20, 16), swift_policy())
        return runtime.execute(terasort.terasort_job(100, 100))

    result = benchmark.pedantic(run_job, rounds=3, iterations=1)
    assert result.completed


def test_partitioning_rate(benchmark):
    from repro.core.partition import partition_job
    from repro.workloads import tpch

    dag = tpch.query_dag(9)
    graph = benchmark(partition_job, dag)
    assert len(graph) == 4
