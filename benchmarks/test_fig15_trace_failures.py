"""Fig. 15 — trace replay with trace-calibrated failures.

Paper: whole-job restart slows jobs by 45% on average; Swift's fine-grained
recovery by only 5%.  Shape criterion: restart's average slowdown is many
times Swift's.
"""

from repro.experiments import fig15_trace_failures

from bench_helpers import report


def test_fig15_trace_failures(benchmark):
    result = benchmark.pedantic(
        fig15_trace_failures, kwargs={"n_jobs": 200}, rounds=1, iterations=1
    )
    report(result)
    rows = {row["policy"]: row for row in result.rows}
    swift = rows["swift"]["mean_slowdown_pct"]
    restart = rows["swift_restart"]["mean_slowdown_pct"]
    assert restart > 3 * max(swift, 1.0)
    assert swift < 18.0
    assert 25.0 < restart < 80.0          # paper: ~45%
