"""Table I — Terasort, Spark vs Swift across job sizes.

Paper: speedups of 3.07 / 3.96 / 7.06 / 14.18 for 250^2 .. 1500^2; Spark
time shoots up past 1000^2 while Swift grows only slightly.
"""

from repro.experiments import table1_terasort

from bench_helpers import report


def test_table1_terasort(benchmark):
    result = benchmark.pedantic(table1_terasort, rounds=1, iterations=1)
    report(result)
    speedups = [row["speedup"] for row in result.rows]
    swift_times = [row["swift_s"] for row in result.rows]
    spark_times = [row["spark_s"] for row in result.rows]
    # Speedup grows monotonically with job size into the double digits.
    assert all(b > a for a, b in zip(speedups, speedups[1:]))
    assert speedups[0] > 2.0
    assert speedups[-1] > 8.0
    # Swift only grows slightly; Spark shoots up.
    assert swift_times[-1] < swift_times[0] * 1.5
    assert spark_times[-1] > spark_times[0] * 3.0
