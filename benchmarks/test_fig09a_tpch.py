"""Fig. 9(a) — TPC-H (1 TB), Swift vs Spark per query.

Paper: total speedup of 2.11x over tuned Spark SQL 2.4.6.  Shape criteria:
Swift wins every query, and the total speedup lands near 2x.
"""

from repro.experiments import fig9a_tpch

from bench_helpers import report


def test_fig9a_tpch(benchmark):
    result = benchmark.pedantic(fig9a_tpch, rounds=1, iterations=1)
    report(result)
    per_query = [row for row in result.rows if row["query"] != "TOTAL"]
    total = next(row for row in result.rows if row["query"] == "TOTAL")
    assert all(row["speedup"] > 1.0 for row in per_query)
    assert 1.7 <= total["speedup"] <= 3.2       # paper: 2.11x
