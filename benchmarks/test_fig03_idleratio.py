"""Fig. 3 — IdleRatio of four production clusters under gang scheduling.

Paper: average IdleRatio of 3.81 / 13.15 / 14.45 / 14.92 % for clusters
#1..#4.  Shape criterion: cluster #1 (shallow jobs) is far below the other
three, which sit in the low-to-mid teens.
"""

from repro.experiments import fig3_idle_ratio

from bench_helpers import report


def test_fig3_idle_ratio(benchmark):
    result = benchmark.pedantic(
        fig3_idle_ratio, kwargs={"n_jobs": 120}, rounds=1, iterations=1
    )
    report(result)
    ratios = [row["idle_ratio_pct"] for row in result.rows]
    assert ratios[0] < min(ratios[1:])          # shallow cluster wastes least
    for value in ratios[1:]:
        assert 5.0 < value < 30.0               # the paper's low-to-mid teens
