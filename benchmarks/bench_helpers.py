"""Shared benchmark helpers (kept out of conftest so that running tests/
and benchmarks/ in one pytest session cannot collide on module names)."""

from __future__ import annotations


def report(result) -> None:
    """Print an ExperimentResult table under the benchmark output."""
    print()
    print(result.format_table())
