"""Ablation — adaptive shuffle selection tracks the best fixed scheme.

The adaptive policy (thresholds 10k/90k) should stay within a few percent
of the per-class best fixed scheme in every shuffle-size class.
"""

from repro.experiments import adaptive_shuffle_envelope

from bench_helpers import report


def test_ablation_adaptive_shuffle(benchmark):
    result = benchmark.pedantic(
        adaptive_shuffle_envelope, kwargs={"n_jobs": 6}, rounds=1, iterations=1
    )
    report(result)
    for row in result.rows:
        assert row["overhead_pct"] < 8.0
