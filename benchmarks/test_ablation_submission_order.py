"""Ablation — conservative vs eager graphlet submission (Section III-A2).

The paper deliberately submits graphlet 3 of Q9 only after J6 completes,
accepting a conservative order to avoid J10 idling on executors.  Eager
submission grabs executors earlier (higher IdleRatio) for roughly the same
completion time on an uncontended cluster.
"""

from repro.experiments import submission_order_ablation

from bench_helpers import report


def test_ablation_submission_order(benchmark):
    result = benchmark.pedantic(submission_order_ablation, rounds=1, iterations=1)
    report(result)
    rows = {row["submission"]: row for row in result.rows}
    assert (
        rows["eager"]["mean_idle_ratio_pct"]
        > rows["conservative"]["mean_idle_ratio_pct"] + 3.0
    )
    assert rows["conservative"]["run_time_s"] <= rows["eager"]["run_time_s"] * 1.1
