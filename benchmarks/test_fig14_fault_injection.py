"""Fig. 14 — single-failure injection into TPC-H Q13.

Paper: failures injected at normalized times 20/40/60/80/100 into stages
M2/J3/R4/R5/R6.  Swift's fine-grained recovery slows the job by <10% in
every case (zero at t=20 because M2's output was already received); job
restart pays roughly the injection time again.
"""

from repro.experiments import fig14_fault_injection

from bench_helpers import report


def test_fig14_fault_injection(benchmark):
    result = benchmark.pedantic(fig14_fault_injection, rounds=1, iterations=1)
    report(result)
    for row in result.rows:
        assert row["swift_slowdown_pct"] < 12.0
        assert row["restart_slowdown_pct"] > row["inject_at"] - 10
    by_stage = {row["stage"]: row for row in result.rows}
    # M2's output was already consumed at t=20: no slowdown at all.
    assert by_stage["M2"]["swift_slowdown_pct"] < 1.0
    # J3 (critical path, large input) is the expensive recovery.
    assert by_stage["J3"]["swift_slowdown_pct"] == max(
        row["swift_slowdown_pct"] for row in result.rows
    )
