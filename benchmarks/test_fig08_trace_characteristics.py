"""Fig. 8 — characteristics of the production trace.

Paper: average job run time 30s, >90% of jobs within 120s, >80% of jobs
with <=80 tasks and <=4 stages.
"""

from repro.experiments import fig8_trace_characteristics

from bench_helpers import report


def test_fig8_trace_characteristics(benchmark):
    result = benchmark.pedantic(
        fig8_trace_characteristics, kwargs={"n_jobs": 1000}, rounds=1, iterations=1
    )
    report(result)
    by_metric = {row["metric"]: row["measured"] for row in result.rows}
    assert 15.0 <= by_metric["avg_runtime_s"] <= 45.0
    assert by_metric["frac_runtime_le_120s"] >= 0.88
    assert by_metric["frac_tasks_le_80"] >= 0.80
    assert by_metric["frac_stages_le_4"] >= 0.80
