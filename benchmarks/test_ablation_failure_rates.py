"""Ablation — failure-rate sweep extending Fig. 15.

Fine-grained recovery should degrade gently as failures become frequent,
while whole-job restart degrades steeply.
"""

from repro.experiments import failure_rate_sweep

from bench_helpers import report


def test_ablation_failure_rates(benchmark):
    result = benchmark.pedantic(
        failure_rate_sweep, kwargs={"n_jobs": 100}, rounds=1, iterations=1
    )
    report(result)
    for row in result.rows:
        if row["failure_rate"] == 0.0:
            continue
        assert row["swift_restart_slowdown_pct"] > row["swift_slowdown_pct"]
    # At high failure rates restart degrades much faster.  (The gap is
    # diluted by single-stage jobs, for which re-running the failed task
    # and restarting the job cost the same.)
    last = result.rows[-1]
    assert last["swift_restart_slowdown_pct"] > 1.5 * max(last["swift_slowdown_pct"], 1.0)
    assert last["swift_restart_slowdown_pct"] - last["swift_slowdown_pct"] > 10.0
