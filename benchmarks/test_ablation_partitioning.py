"""Ablation — the unit of scheduling (graphlet vs whole-job vs stage vs
bubble), everything else held fixed.

Expectation from the paper's arguments: graphlet scheduling matches or
beats the alternatives on makespan while keeping IdleRatio low; whole-job
gangs idle the most.
"""

from repro.experiments import partitioning_ablation

from bench_helpers import report


def test_ablation_partitioning(benchmark):
    result = benchmark.pedantic(
        partitioning_ablation, kwargs={"n_jobs": 150}, rounds=1, iterations=1
    )
    report(result)
    rows = {row["partitioning"]: row for row in result.rows}
    swift = rows["graphlet (swift)"]
    whole = rows["whole job"]
    assert swift["mean_idle_ratio_pct"] < whole["mean_idle_ratio_pct"]
    assert swift["makespan_s"] <= whole["makespan_s"] * 1.05
    assert swift["mean_latency_s"] <= whole["mean_latency_s"]
