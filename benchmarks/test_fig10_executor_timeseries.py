"""Fig. 10 — running-executor counts replaying the trace on 100 nodes.

Paper: Swift and Bubble keep executors busy and finish in 240s and 296s;
JetScope fluctuates (head-of-line blocked gangs) and takes 2.44x longer
than Swift.  Shape criteria: makespan(swift) < makespan(bubble) <
makespan(jetscope), with a clear JetScope gap.
"""

from repro.experiments import fig10_executor_timeseries, fig10_makespans

from bench_helpers import report


def test_fig10_executor_timeseries(benchmark):
    result = benchmark.pedantic(
        fig10_executor_timeseries, kwargs={"n_jobs": 400}, rounds=1, iterations=1
    )
    spans = fig10_makespans(n_jobs=400)
    print(f"\nmakespans: {spans}")
    print(f"speedup over jetscope: swift {spans['jetscope'] / spans['swift']:.2f}x "
          f"(paper 2.44x), bubble {spans['jetscope'] / spans['bubble']:.2f}x "
          f"(paper 1.98x)")
    report(result)
    assert spans["swift"] < spans["bubble"] < spans["jetscope"]
    assert spans["jetscope"] / spans["swift"] > 1.25
