"""Fig. 11 — normalized job latency CDF vs Swift.

Paper: more than 60% of JetScope jobs run at >=2x Swift's latency; Bubble
Execution tracks Swift much more closely.  Shape criteria: JetScope's
median normalized latency exceeds Bubble's, and JetScope has a heavy >=2x
tail while Bubble's is light.
"""

from repro.experiments import fig11_latency_cdf

from bench_helpers import report


def test_fig11_latency_cdf(benchmark):
    result = benchmark.pedantic(
        fig11_latency_cdf, kwargs={"n_jobs": 400}, rounds=1, iterations=1
    )
    report(result)
    rows = {row["system"]: row for row in result.rows}
    assert rows["jetscope"]["median_ratio"] > rows["bubble"]["median_ratio"]
    assert rows["jetscope"]["frac_ge_2x"] > rows["bubble"]["frac_ge_2x"]
    assert rows["jetscope"]["frac_ge_2x"] > 0.15
