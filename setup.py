"""Setup shim: offline environments lack the `wheel` package, so the
modern PEP-517 editable path cannot build; this shim lets pip fall back to
the legacy `setup.py develop` editable install."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Swift: Reliable and Low-Latency Data Processing "
        "at Cloud Scale (ICDE 2021)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
